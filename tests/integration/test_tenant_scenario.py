"""Multi-tenant scenario runs: determinism, per-tenant stats, and the
interference matrix, pinned against a committed golden snapshot."""

import json
import os

import pytest

from repro.api import run_simulation, run_tenant_scenario
from repro.specs import HostSpec, SimulationSpec, TenantSpec, WorkloadSpec
from repro.ssd.config import SSDConfig
from tests.helpers.determinism import assert_snapshots_identical

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "tenant_scenario.json"
)


def _scenario_spec(seed=7):
    tenants = (
        TenantSpec(
            name="oltp",
            workload=WorkloadSpec("OLTP", n_requests=80),
            rate_iops=20_000.0,
            partition=(0.0, 0.5),
        ),
        TenantSpec(
            name="web",
            workload=WorkloadSpec("Web", n_requests=80),
            rate_iops=20_000.0,
            partition=(0.5, 1.0),
        ),
    )
    return SimulationSpec(
        config=SSDConfig.small(),
        ftl="cube",
        host=HostSpec(queue_depth=8, tenants=tenants),
        prefill=0.4,
        seed=seed,
    )


class TestTenantRun:
    def test_per_tenant_stats_partition_the_run(self):
        result = run_simulation(_scenario_spec())
        stats = result.stats
        assert stats.completed_requests == 160
        assert set(stats.tenants) == {"oltp", "web"}
        assert sum(
            t.completed_requests for t in stats.tenants.values()
        ) == 160
        for tenant in stats.tenants.values():
            assert tenant.p99_us > 0

    def test_tenants_key_in_stats_dict(self):
        stats = run_simulation(_scenario_spec()).stats
        payload = stats.to_dict()
        assert set(payload["tenants"]) == {"oltp", "web"}
        for block in payload["tenants"].values():
            assert block["completed_requests"] == 80
            assert block["iops"] > 0

    def test_untenanted_run_omits_key(self):
        config = SSDConfig.small()
        result = run_simulation(
            config, "OLTP", n_requests=40, prefill=0.4, seed=7
        )
        assert "tenants" not in result.stats.to_dict()

    def test_same_seed_same_result(self):
        one = run_simulation(_scenario_spec()).stats.to_dict()
        two = run_simulation(_scenario_spec()).stats.to_dict()
        assert_snapshots_identical(one, two, "repeated tenant runs")


class TestScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tenant_scenario(_scenario_spec())

    def test_matrix_shape(self, result):
        matrix = result.interference_matrix()
        assert set(matrix) == {"oltp", "web"}
        for row in matrix.values():
            for key in ("solo_p99_us", "shared_p99_us", "p99_slowdown",
                        "solo_iops", "shared_iops"):
                assert key in row
            assert row["p99_slowdown"] > 0

    def test_sharing_does_not_speed_tenants_up(self, result):
        """Contention can only hurt: shared p99 >= solo p99 for every
        tenant (streams are bit-identical across the two runs)."""
        for row in result.interference_matrix().values():
            assert row["shared_p99_us"] >= row["solo_p99_us"]

    def test_jobs_do_not_change_results(self):
        serial = run_tenant_scenario(_scenario_spec(), jobs=1)
        parallel = run_tenant_scenario(_scenario_spec(), jobs=2)
        assert_snapshots_identical(
            serial.to_dict(), parallel.to_dict(),
            "tenant scenario serial vs jobs=2",
        )

    def test_matches_golden_snapshot(self, result):
        """The full scenario result is pinned: a diff here means the
        simulated timeline or the scenario schema moved (regenerate
        with tests/integration/golden/regen_tenants.py if intended)."""
        with open(GOLDEN) as handle:
            golden = json.load(handle)
        assert_snapshots_identical(
            result.to_dict(), golden, "tenant scenario vs golden"
        )
