"""Page-level address translation (L2P / P2L) with validity tracking.

Numpy-backed so the paper-scale device (about two million physical pages)
translates in O(1) per access with modest memory.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nand.geometry import SSDGeometry

#: sentinel for "not mapped"
UNMAPPED = -1


class PageMapper:
    """L2P/P2L tables plus per-block valid-page accounting."""

    def __init__(self, geometry: SSDGeometry, logical_pages: int) -> None:
        if logical_pages < 1:
            raise ValueError("logical_pages must be >= 1")
        if logical_pages > geometry.total_pages:
            raise ValueError("logical space exceeds physical capacity")
        self.geometry = geometry
        self.logical_pages = logical_pages
        self._l2p = np.full(logical_pages, UNMAPPED, dtype=np.int64)
        self._p2l = np.full(geometry.total_pages, UNMAPPED, dtype=np.int64)
        self._valid = np.zeros(geometry.total_pages, dtype=bool)
        self._valid_count = np.zeros(
            (geometry.n_chips, geometry.blocks_per_chip), dtype=np.int32
        )
        # bound methods cached for the translation fast path: ndarray.item
        # returns a plain Python int without materializing a numpy scalar,
        # which roughly halves the cost of the per-page lookup -- the
        # single hottest mapping operation on read-dominated workloads
        self._l2p_item = self._l2p.item
        self._p2l_item = self._p2l.item
        self._valid_item = self._valid.item
        # plain-int geometry constants so the per-bind PPN decomposition
        # needs no attribute chains
        self._pages_per_chip = int(geometry.pages_per_chip)
        self._pages_per_block = int(geometry.block.pages_per_block)

    # ------------------------------------------------------------------

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise IndexError(f"LPN {lpn} out of range [0, {self.logical_pages})")

    def _block_of_ppn(self, ppn: int) -> Tuple[int, int]:
        chip_id, rest = divmod(ppn, self._pages_per_chip)
        block = rest // self._pages_per_block
        return chip_id, block

    # ------------------------------------------------------------------

    def lookup(self, lpn: int) -> int:
        """PPN currently holding an LPN, or :data:`UNMAPPED`."""
        if 0 <= lpn < self.logical_pages:
            return self._l2p_item(lpn)
        raise IndexError(f"LPN {lpn} out of range [0, {self.logical_pages})")

    def lpn_of(self, ppn: int) -> int:
        return self._p2l_item(ppn)

    def is_valid(self, ppn: int) -> bool:
        return self._valid_item(ppn)

    def bind(self, lpn: int, ppn: int) -> int:
        """Map an LPN to a newly programmed PPN.

        Any previous mapping of the LPN is invalidated.  Returns the old
        PPN (or :data:`UNMAPPED`).
        """
        if not 0 <= lpn < self.logical_pages:
            raise IndexError(
                f"LPN {lpn} out of range [0, {self.logical_pages})"
            )
        if not 0 <= ppn < self.geometry.total_pages:
            raise IndexError(f"PPN {ppn} out of range")
        if self._valid_item(ppn):
            raise ValueError(f"PPN {ppn} already holds valid data")
        old = self._l2p_item(lpn)
        if old != UNMAPPED:
            self._invalidate_ppn(old)
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        self._valid[ppn] = True
        chip_id, rest = divmod(ppn, self._pages_per_chip)
        self._valid_count[chip_id, rest // self._pages_per_block] += 1
        return old

    def invalidate_lpn(self, lpn: int) -> None:
        """Drop an LPN's mapping (trim / overwrite-in-buffer)."""
        self._check_lpn(lpn)
        old = self._l2p_item(lpn)
        if old != UNMAPPED:
            self._invalidate_ppn(old)
            self._l2p[lpn] = UNMAPPED

    def _invalidate_ppn(self, ppn: int) -> None:
        if self._valid_item(ppn):
            self._valid[ppn] = False
            chip_id, rest = divmod(ppn, self._pages_per_chip)
            self._valid_count[chip_id, rest // self._pages_per_block] -= 1
        self._p2l[ppn] = UNMAPPED

    # ------------------------------------------------------------------
    # block-granular queries (GC support)
    # ------------------------------------------------------------------

    def valid_count(self, chip_id: int, block: int) -> int:
        return int(self._valid_count[chip_id, block])

    def valid_counts_of_chip(self, chip_id: int) -> np.ndarray:
        return self._valid_count[chip_id].copy()

    def _block_page_range(self, chip_id: int, block: int) -> Tuple[int, int]:
        per_block = self.geometry.block.pages_per_block
        base = chip_id * self.geometry.pages_per_chip + block * per_block
        return base, base + per_block

    def valid_pages_of_block(self, chip_id: int, block: int) -> List[Tuple[int, int]]:
        """(ppn, lpn) pairs of the block's valid pages, in page order."""
        lo, hi = self._block_page_range(chip_id, block)
        ppns = np.nonzero(self._valid[lo:hi])[0] + lo
        return [(int(ppn), int(self._p2l[ppn])) for ppn in ppns]

    def clear_block(self, chip_id: int, block: int) -> None:
        """Reset a block's physical state after erase.

        The block must contain no valid pages (GC migrates them first).
        """
        if self.valid_count(chip_id, block) != 0:
            raise ValueError(
                f"block (chip={chip_id}, block={block}) still has valid pages"
            )
        lo, hi = self._block_page_range(chip_id, block)
        self._p2l[lo:hi] = UNMAPPED
        self._valid[lo:hi] = False

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable copy of the translation tables (numpy arrays
        round-trip through the checkpoint pickle unchanged)."""
        return {
            "l2p": self._l2p.copy(),
            "p2l": self._p2l.copy(),
            "valid": self._valid.copy(),
            "valid_count": self._valid_count.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["l2p"]) != self.logical_pages:
            raise ValueError(
                f"L2P table holds {len(state['l2p'])} entries, this device "
                f"exposes {self.logical_pages} logical pages"
            )
        self._l2p = np.array(state["l2p"], dtype=np.int64)
        self._p2l = np.array(state["p2l"], dtype=np.int64)
        self._valid = np.array(state["valid"], dtype=bool)
        self._valid_count = np.array(state["valid_count"], dtype=np.int32)
        # the fast-path bound methods point at the *old* arrays; re-bind
        self._l2p_item = self._l2p.item
        self._p2l_item = self._p2l.item
        self._valid_item = self._valid.item

    # ------------------------------------------------------------------
    # invariants (exercised by property-based tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if the tables are inconsistent."""
        mapped = self._l2p[self._l2p != UNMAPPED]
        assert len(np.unique(mapped)) == len(mapped), "two LPNs share a PPN"
        for lpn in np.nonzero(self._l2p != UNMAPPED)[0]:
            ppn = self._l2p[lpn]
            assert self._p2l[ppn] == lpn, f"P2L mismatch at LPN {lpn}"
            assert self._valid[ppn], f"mapped PPN {ppn} not marked valid"
        assert int(self._valid.sum()) == int(self._valid_count.sum()), (
            "valid-count accounting drifted"
        )

    def mapped_lpn_count(self) -> int:
        return int((self._l2p != UNMAPPED).sum())

    def mapped_lpns(self) -> np.ndarray:
        """All currently mapped LPNs, ascending."""
        return np.nonzero(self._l2p != UNMAPPED)[0]

    def audit(self) -> Optional[dict]:
        """Structured full-table audit for the runtime checker.

        Returns ``None`` when the tables are consistent, else a dict
        naming the first inconsistency found (``message`` plus the
        offending ``lpn`` / ``ppn`` / ``chip`` / ``block`` where
        applicable).  The happy path is fully vectorized; offender
        localization only runs once an inconsistency exists.
        """
        l2p, p2l, valid = self._l2p, self._p2l, self._valid
        mapped_lpns = np.nonzero(l2p != UNMAPPED)[0]
        mapped_ppns = l2p[mapped_lpns]

        # two LPNs sharing a PPN
        if len(np.unique(mapped_ppns)) != len(mapped_ppns):
            order = np.argsort(mapped_ppns, kind="stable")
            sorted_ppns = mapped_ppns[order]
            where = np.nonzero(sorted_ppns[1:] == sorted_ppns[:-1])[0][0]
            ppn = int(sorted_ppns[where])
            first = int(mapped_lpns[order[where]])
            second = int(mapped_lpns[order[where + 1]])
            chip_id, block = self._block_of_ppn(ppn)
            return {
                "message": f"LPNs {first} and {second} both map to PPN {ppn}",
                "lpn": second,
                "ppn": ppn,
                "chip": chip_id,
                "block": block,
                "other_lpn": first,
            }

        # L2P -> P2L round trip + validity of mapped PPNs
        bad = np.nonzero(
            (p2l[mapped_ppns] != mapped_lpns) | ~valid[mapped_ppns]
        )[0]
        if len(bad):
            lpn = int(mapped_lpns[bad[0]])
            ppn = int(l2p[lpn])
            chip_id, block = self._block_of_ppn(ppn)
            if not valid[ppn]:
                message = f"LPN {lpn} maps to PPN {ppn} which is not valid"
            else:
                message = (
                    f"L2P[{lpn}] = {ppn} but P2L[{ppn}] = {int(p2l[ppn])}"
                )
            return {
                "message": message,
                "lpn": lpn,
                "ppn": ppn,
                "chip": chip_id,
                "block": block,
            }

        # every valid PPN must round-trip through P2L back to itself
        valid_ppns = np.nonzero(valid)[0]
        bad = np.nonzero(
            (p2l[valid_ppns] == UNMAPPED)
            | (l2p[np.clip(p2l[valid_ppns], 0, self.logical_pages - 1)]
               != valid_ppns)
        )[0]
        if len(bad):
            ppn = int(valid_ppns[bad[0]])
            lpn = int(p2l[ppn])
            chip_id, block = self._block_of_ppn(ppn)
            return {
                "message": (
                    f"valid PPN {ppn} is orphaned: P2L says LPN {lpn} but "
                    "no L2P entry points back"
                ),
                "lpn": lpn if lpn != UNMAPPED else None,
                "ppn": ppn,
                "chip": chip_id,
                "block": block,
            }

        # per-block valid-page accounting
        per_block = valid.reshape(
            self.geometry.n_chips,
            self.geometry.blocks_per_chip,
            self.geometry.block.pages_per_block,
        ).sum(axis=2)
        if not np.array_equal(per_block, self._valid_count):
            drifted = np.nonzero(per_block != self._valid_count)
            chip_id = int(drifted[0][0])
            block = int(drifted[1][0])
            return {
                "message": (
                    f"valid-count drift: counter says "
                    f"{int(self._valid_count[chip_id, block])} valid pages "
                    f"but {int(per_block[chip_id, block])} are marked valid"
                ),
                "chip": chip_id,
                "block": block,
                "counter": int(self._valid_count[chip_id, block]),
                "actual": int(per_block[chip_id, block]),
            }

        return None
