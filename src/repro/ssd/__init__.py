"""SSD-level substrate: configuration, write buffer, controller, stats."""

from repro.ssd.config import SSDConfig
from repro.ssd.stats import LatencyStats, SimulationStats
from repro.ssd.write_buffer import WriteBuffer
from repro.ssd.controller import SSDSimulation

__all__ = [
    "SSDConfig",
    "LatencyStats",
    "SimulationStats",
    "WriteBuffer",
    "SSDSimulation",
]
