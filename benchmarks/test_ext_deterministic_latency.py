"""Extension bench -- deterministic latency from process similarity.

Section 8 of the paper proposes using the horizontal similarity to build
SSDs with *highly deterministic* latency.  This bench quantifies it:

- program side: predict each follower program's tPROG from the leader's
  monitored parameters and compare with the actual latency, against a
  PS-unaware estimator that can only use the datasheet number;
- read side (end of life): predict reads at one sense using the ORT, and
  measure how often retries break the prediction, against the PS-unaware
  retry sweep.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.core.latency_predictor import LatencyPredictor, PredictionStats
from repro.core.opm import OptimalParameterManager
from repro.nand.chip import NandChip
from repro.nand.read_retry import ReadParams
from repro.nand.reliability import AgingState

N_BLOCKS = 8


def regenerate():
    chip = NandChip(chip_id=0, n_blocks=N_BLOCKS, env_shift_prob=0.0)
    opm = OptimalParameterManager(chip.ispp)
    predictor = LatencyPredictor(opm, chip.timing)
    naive = PredictionStats()

    for block in range(N_BLOCKS):
        for layer in range(chip.geometry.n_layers):
            leader = chip.program_wl(block, layer, 0)
            opm.record_leader(0, block, layer, leader)
            naive.record(predictor.predict_program_default_us(), leader.t_prog_us)
            predicted = predictor.predict_program_us(0, block, layer)
            params = opm.follower_params(0, block, layer)
            for wl in range(1, chip.geometry.wls_per_layer):
                actual = chip.program_wl(block, layer, wl, params=params)
                predictor.record_program(predicted, actual.t_prog_us)
                naive.record(
                    predictor.predict_program_default_us(), actual.t_prog_us
                )

    # read side at end of life
    aged = NandChip(chip_id=1, n_blocks=2, env_shift_prob=0.0)
    aged.set_baseline_aging(AgingState(2000, 12.0))
    read_aware = PredictionStats()
    read_naive = PredictionStats()
    for block in range(2):
        for layer in range(aged.geometry.n_layers):
            for wl in range(aged.geometry.wls_per_layer):
                aged.program_wl(block, layer, wl)
            for wl in range(aged.geometry.wls_per_layer):
                for page in range(aged.geometry.pages_per_wl):
                    hint = opm.ort.get(1, block, layer)
                    result = aged.read_page(
                        block, layer, wl, page, ReadParams(offset_hint=hint)
                    )
                    opm.ort.update(1, block, layer, result.final_offset)
                    read_aware.record(aged.timing.read_us(0), result.t_read_us)
                    baseline = aged.read_page(block, layer, wl, page)
                    read_naive.record(aged.timing.read_us(0), baseline.t_read_us)

    rows = [
        ["program, PS-aware", len(predictor.program_stats),
         round(predictor.program_stats.mean_abs_error_us, 2),
         round(predictor.program_stats.percentile_abs_error(99), 1),
         f"{100 * predictor.program_stats.exact_fraction:.1f} %"],
        ["program, PS-unaware", len(naive),
         round(naive.mean_abs_error_us, 2),
         round(naive.percentile_abs_error(99), 1),
         f"{100 * naive.exact_fraction:.1f} %"],
        ["read @EOL, PS-aware (ORT)", len(read_aware),
         round(read_aware.mean_abs_error_us, 2),
         round(read_aware.percentile_abs_error(99), 1),
         f"{100 * read_aware.exact_fraction:.1f} %"],
        ["read @EOL, PS-unaware", len(read_naive),
         round(read_naive.mean_abs_error_us, 2),
         round(read_naive.percentile_abs_error(99), 1),
         f"{100 * read_naive.exact_fraction:.1f} %"],
    ]
    text = (
        "Deterministic latency (paper Section 8 extension):\n"
        + format_table(
            ["estimator", "ops", "mean |err| us", "p99 |err| us", "exact"], rows
        )
    )
    return text, predictor.program_stats, naive, read_aware, read_naive


def test_deterministic_latency(benchmark):
    text, aware, naive, read_aware, read_naive = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    emit("ext_deterministic_latency", text)
    # follower programs are predicted exactly
    assert aware.exact_fraction > 0.99
    # the PS-unaware estimator misses by tens of microseconds at p99
    assert naive.percentile_abs_error(99) > 50.0
    assert naive.exact_fraction < 0.8
    # ORT reads are far more predictable than retry sweeps
    assert read_aware.mean_abs_error_us < 0.5 * read_naive.mean_abs_error_us
    assert read_aware.exact_fraction > 0.5
    assert read_aware.exact_fraction > 3 * read_naive.exact_fraction
