"""Shape tests for every characterization-figure data generator.

These assert the qualitative results the paper reports, figure by figure.
"""

import numpy as np
import pytest

from repro.characterization import experiments as exp
from repro.characterization.harness import CharacterizationStudy, StudyConfig
from repro.nand.reliability import AgingState, ReliabilityModel


@pytest.fixture(scope="module")
def study():
    return CharacterizationStudy(StudyConfig(n_chips=2, blocks_per_chip=4))


class TestFig5:
    def test_intra_layer_similarity(self, study):
        """Fig. 5(a,b): Delta-H ~= 1 on all four representative layers."""
        for aging in (AgingState(1000, 1.0), AgingState(2000, 12.0)):
            data = exp.fig5_intra_layer_ber(study, aging)
            assert set(data) == {"alpha", "beta", "kappa", "omega"}
            for stats in data.values():
                assert stats["delta_h"] < 1.03

    def test_edge_layers_have_high_ber(self, study):
        data = exp.fig5_intra_layer_ber(study, AgingState(1000, 1.0))
        beta = np.mean(data["beta"]["normalized_ber"])
        assert np.mean(data["alpha"]["normalized_ber"]) > beta
        assert np.mean(data["omega"]["normalized_ber"]) > beta
        assert np.mean(data["kappa"]["normalized_ber"]) > beta

    def test_delta_h_stable_across_blocks_and_aging(self, study):
        """Fig. 5(c): Delta-H ~= 1 everywhere.

        Aging states are chosen so N_ret is large enough that integer
        error counts do not quantize the ratio (fresh blocks have only a
        handful of retention errors).
        """
        agings = [AgingState(1000, 1.0), AgingState(2000, 1.0), AgingState(2000, 12.0)]
        data = exp.fig5c_delta_h_over_blocks(study, agings)
        for stats in data.values():
            assert stats["max"] < 1.06
            assert stats["mean"] < 1.03

    def test_t_prog_identical_within_layer(self, study):
        grid = exp.fig5d_t_prog_per_wl(study)
        for layer in range(grid.shape[0]):
            assert np.ptp(grid[layer]) == 0.0


class TestFig6:
    def test_delta_v_grows_with_aging(self, study):
        agings = [AgingState(0, 0), AgingState(2000, 0.0), AgingState(2000, 12.0)]
        data = exp.fig6_inter_layer_ber(study, agings)
        fresh_dv = data[(0, 0.0)]["delta_v"]
        aged_dv = data[(2000, 12.0)]["delta_v"]
        assert 1.4 <= fresh_dv <= 1.9
        assert 2.0 <= aged_dv <= 2.7
        assert aged_dv > fresh_dv

    def test_normalized_ber_grows_with_aging(self, study):
        agings = [AgingState(0, 0), AgingState(2000, 12.0)]
        data = exp.fig6_inter_layer_ber(study, agings)
        fresh = np.asarray(data[(0, 0.0)]["normalized_ber"])
        aged = np.asarray(data[(2000, 12.0)]["normalized_ber"])
        assert (aged > fresh).all()

    def test_per_block_spread(self, study):
        """Fig. 6(d): block-to-block Delta-V differences around 18 %."""
        data = exp.fig6d_per_block_delta_v(study, AgingState(2000, 1.0))
        assert 1.05 <= data["spread_ratio"] <= 1.45
        assert data["delta_v_block_i"] > data["delta_v_block_ii"]


class TestFig8:
    def test_safe_skips_and_reduction(self):
        data = exp.fig8a_ber_vs_skips()
        assert [data[s]["safe_skips"] for s in range(1, 8)] == [1, 2, 3, 4, 5, 6, 7]
        reduction = data["t_prog_reduction"]["reduction_fraction"]
        assert 0.13 <= reduction <= 0.19  # paper: 16.2 %

    def test_ber_flat_then_rising(self):
        data = exp.fig8a_ber_vs_skips()
        for state in range(1, 8):
            penalties = data[state]["ber_penalty_by_extra_skip"]
            assert penalties[0] == pytest.approx(1.0)  # safe point
            assert all(b > a for a, b in zip(penalties, penalties[1:]))

    def test_skip_distribution_monotone_in_state(self):
        data = exp.fig8b_skip_distribution(n_blocks=4)
        means = [data[s]["mean"] for s in range(1, 8)]
        assert means == sorted(means)
        assert data[7]["max"] >= 7


class TestFig10:
    def test_best_layer_gets_largest_margin(self):
        reliability = ReliabilityModel()
        data = exp.fig10_adjustment_margins(reliability)
        assert data["beta"]["max_safe_margin_mv"] > data["kappa"]["max_safe_margin_mv"]

    def test_margins_shrink_with_aging(self):
        reliability = ReliabilityModel()
        fresh = exp.fig10_adjustment_margins(reliability, AgingState(0, 0))
        aged = exp.fig10_adjustment_margins(reliability, AgingState(2000, 12.0))
        for name in ("alpha", "beta", "kappa", "omega"):
            assert aged[name]["max_safe_margin_mv"] < fresh[name]["max_safe_margin_mv"]

    def test_ber_vs_margin_monotone(self):
        data = exp.fig10b_ber_vs_margin()
        values = [data[m] for m in sorted(data)]
        assert values == sorted(values)
        assert values[0] == 1.0


class TestFig11:
    def test_ber_ep1_predicts_retention_ber(self):
        """Fig. 11(a): strong correlation."""
        data = exp.fig11a_ber_ep1_correlation()
        assert data["correlation"] > 0.95

    def test_margin_conversion_anchor(self):
        """Fig. 11(b): S_M = 1.7 -> 320 mV -> a ~20 % tPROG reduction."""
        data = exp.fig11b_margin_conversion()
        anchor = data[1.7]
        assert anchor["margin_mv"] == pytest.approx(320.0)
        assert 0.15 <= anchor["t_prog_reduction"] <= 0.30

    def test_margin_conversion_monotone(self):
        data = exp.fig11b_margin_conversion()
        s_values = sorted(data)
        reductions = [data[s]["t_prog_reduction"] for s in s_values]
        assert all(b >= a for a, b in zip(reductions, reductions[1:]))
        assert data[0.0]["t_prog_reduction"] == pytest.approx(0.0, abs=1e-9)


class TestFig13:
    def test_orders_equivalent(self):
        data = exp.fig13_program_order_ber()
        assert set(data) == {"horizontal-first", "vertical-first", "mixed"}
        for stats in data.values():
            assert abs(stats["normalized_mean_ber"] - 1.0) < 0.03
            assert stats["max_wl_deviation"] < 0.03


class TestFig14:
    @pytest.fixture(scope="class")
    def data(self):
        return exp.fig14_read_retry_distribution(n_blocks=6)

    def test_reduction_matches_paper_band(self, data):
        """Paper: ~66 % mean NumRetry reduction."""
        assert 0.5 <= data["reduction"] <= 0.9

    def test_aware_distribution_concentrated_at_zero(self, data):
        aware = data["aware_histogram"]
        unaware = data["unaware_histogram"]
        assert aware[0] > unaware[0]
        assert sum(aware[:2]) / sum(aware) > 0.8

    def test_unaware_mean_in_calibrated_band(self, data):
        assert 1.8 <= data["unaware_mean"] <= 3.5
