"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


class TestEngine:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9.0

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(3.0, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        engine = Engine()
        times = []

        def first():
            times.append(engine.now)
            engine.schedule(2.0, second)

        def second():
            times.append(engine.now)

        engine.schedule(1.0, first)
        engine.run()
        assert times == [1.0, 3.0]

    def test_run_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 2]

    def test_run_until_past_all_events_advances_clock(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_max_events(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=2)
        assert fired == [0, 1]

    def test_cancelled_events_skipped(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("cancelled"))
        engine.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        engine.run()
        assert fired == ["kept"]

    def test_schedule_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_processed_counter(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed == 3
