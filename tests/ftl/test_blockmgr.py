"""Tests for the block lifecycle manager."""

import pytest

from repro.ftl.blockmgr import BlockManager, BlockState, OutOfSpaceError
from repro.ftl.mapping import PageMapper


@pytest.fixture
def manager(ssd_geometry):
    return BlockManager(ssd_geometry)


@pytest.fixture
def mapper(ssd_geometry):
    return PageMapper(ssd_geometry, ssd_geometry.total_pages // 2)


class TestLifecycle:
    def test_all_free_initially(self, manager, ssd_geometry):
        assert manager.free_count(0) == ssd_geometry.blocks_per_chip
        assert manager.state(0, 0) is BlockState.FREE

    def test_take_free_activates(self, manager):
        block = manager.take_free(0)
        assert manager.state(0, block) is BlockState.ACTIVE
        assert manager.free_count(0) == manager.geometry.blocks_per_chip - 1

    def test_full_and_free_cycle(self, manager):
        block = manager.take_free(0)
        manager.mark_full(0, block)
        assert manager.state(0, block) is BlockState.FULL
        manager.mark_free(0, block)
        assert manager.state(0, block) is BlockState.FREE

    def test_mark_full_requires_active(self, manager):
        with pytest.raises(ValueError):
            manager.mark_full(0, 0)

    def test_mark_free_requires_not_free(self, manager):
        with pytest.raises(ValueError):
            manager.mark_free(0, 0)

    def test_exhaustion(self, manager, ssd_geometry):
        for _ in range(ssd_geometry.blocks_per_chip):
            manager.take_free(0)
        with pytest.raises(OutOfSpaceError):
            manager.take_free(0)

    def test_chips_independent(self, manager, ssd_geometry):
        manager.take_free(0)
        assert manager.free_count(1) == ssd_geometry.blocks_per_chip

    def test_counts(self, manager, ssd_geometry):
        block = manager.take_free(0)
        manager.mark_full(0, block)
        counts = manager.counts(0)
        assert counts[BlockState.FULL] == 1
        assert counts[BlockState.FREE] == ssd_geometry.blocks_per_chip - 1


class TestVictimSelection:
    def test_greedy_min_valid(self, manager, mapper, ssd_geometry):
        a = manager.take_free(0)
        b = manager.take_free(0)
        manager.mark_full(0, a)
        manager.mark_full(0, b)
        per_block = ssd_geometry.block.pages_per_block
        # block a: 2 valid pages; block b: 1 valid page
        mapper.bind(0, a * per_block)
        mapper.bind(1, a * per_block + 1)
        mapper.bind(2, b * per_block)
        assert manager.select_victim(0, mapper) == b

    def test_no_victim_raises(self, manager, mapper):
        with pytest.raises(OutOfSpaceError):
            manager.select_victim(0, mapper)

    def test_active_blocks_not_victims(self, manager, mapper):
        manager.take_free(0)  # active, never marked full
        with pytest.raises(OutOfSpaceError):
            manager.select_victim(0, mapper)
