"""Tests for bad-block retirement."""


from repro.ftl.blockmgr import BlockManager, BlockState
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.synthetic import uniform_random_trace


class TestBlockManagerRetirement:
    def test_retire_free_block(self, ssd_geometry):
        manager = BlockManager(ssd_geometry)
        manager.retire(0, 3)
        assert manager.state(0, 3) is BlockState.RETIRED
        assert manager.retired_count(0) == 1
        assert manager.free_count(0) == ssd_geometry.blocks_per_chip - 1
        # a retired block is never handed out again
        seen = {manager.take_free(0) for _ in range(ssd_geometry.blocks_per_chip - 1)}
        assert 3 not in seen

    def test_retire_full_block(self, ssd_geometry):
        manager = BlockManager(ssd_geometry)
        block = manager.take_free(0)
        manager.mark_full(0, block)
        manager.retire(0, block)
        assert manager.state(0, block) is BlockState.RETIRED
        assert block not in manager.full_blocks(0)

    def test_retire_idempotent(self, ssd_geometry):
        manager = BlockManager(ssd_geometry)
        manager.retire(0, 3)
        manager.retire(0, 3)
        assert manager.retired_count(0) == 1


class TestEndToEndRetirement:
    def test_worn_blocks_retire_during_gc(self):
        """With a tiny endurance limit, GC erases start failing and the
        FTL retires blocks instead of crashing."""
        config = SSDConfig.small(
            logical_fraction=0.45,
            gc_trigger_blocks=3,
            # FIFO recycling concentrates erases so the limit is reached
            # within a short run
            wear_aware_allocation=False,
        )
        sim = SSDSimulation(config, ftl="page")
        # endurance so low that GC victims wear out quickly; the ample
        # over-provisioning (55 %) absorbs the retired blocks
        for chip in sim.controller.chips:
            chip.erase_limit = 1  # any re-erase wears the block out
        sim.prefill(1.0)
        trace = uniform_random_trace(
            config.logical_pages, 2400, read_fraction=0.1, seed=9
        )
        # with a 1-erase endurance the device eventually runs out of
        # usable blocks entirely -- retiring along the way is the point
        from repro.ftl.blockmgr import OutOfSpaceError

        try:
            sim.run(trace, queue_depth=8)
        except OutOfSpaceError:
            pass
        counters = sim.ftl.counters
        assert counters.retired_blocks > 0
        total_retired = sum(
            sim.ftl.blocks.retired_count(chip)
            for chip in range(config.geometry.n_chips)
        )
        assert total_retired == counters.retired_blocks
        # every retirement here came from the endurance limit, and wear
        # is normal aging, not fault recovery
        for chip in range(config.geometry.n_chips):
            table = sim.ftl.blocks.grown_bad_table(chip)
            assert all(reason == "wear" for reason in table.values())
        assert sim.ftl.recovery.blocks_retired == 0
        sim.ftl.mapper.check_invariants()
