"""Exception hierarchy for the NAND device model."""


class NandError(Exception):
    """Base class for all NAND device-model errors."""


class AddressError(NandError):
    """An address is outside the device geometry."""


class ProgramOrderError(NandError):
    """A program operation violates device ordering constraints.

    The 3D NAND model allows WLs of a block to be programmed in any order
    (the paper's Fig. 13 shows the three evaluated orders are reliability
    equivalent), but it still forbids programming a WL twice without an
    intervening block erase.
    """


class ProgramWindowError(NandError):
    """The requested (V_start, V_final) window cannot program the WL.

    Raised when the window is inverted or narrower than one ISPP step.
    """


class UnprogrammedReadError(NandError):
    """A read targeted a page that was never programmed since the last
    block erase."""


class UncorrectableError(NandError):
    """A read returned more raw bit errors than the ECC engine can correct,
    even after exhausting read retries."""


class WearOutError(NandError):
    """A block was erased beyond its rated endurance limit."""


class OperationFailError(NandError):
    """Base class for operation-status failures.

    Unlike the legality errors above, these model the device *reporting*
    a failed operation through its status register -- a first-class
    event a production FTL must recover from, not a caller bug.
    ``t_us`` carries the time the failed operation still consumed.
    """

    def __init__(self, message: str, t_us: float = 0.0) -> None:
        super().__init__(message)
        self.t_us = t_us


class ProgramFailError(OperationFailError):
    """A WL program reported FAIL in its status.

    The WL's contents are indeterminate; the block must not accept
    further programs and should be retired once its valid data has been
    migrated.
    """


class EraseFailError(OperationFailError):
    """A block erase reported FAIL in its status (grown bad block).

    The block must be retired; its state is left as it was before the
    erase attempt.
    """
