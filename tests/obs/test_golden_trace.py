"""Byte-identical JSONL traces against a committed golden baseline.

The trace path is pure-Python float arithmetic with a fixed key order
and Python's deterministic float repr, so a given (config, workload,
seed) must reproduce the committed bytes exactly -- on any host and
with telemetry attached or not.  A diff here means the simulated
timeline itself moved: either an intentional model change (regenerate
the golden with ``tests/obs/golden/regen.py``) or an accidental
perturbation (fix it).
"""

import os

from repro.api import run_simulation
from repro.ssd.config import SSDConfig
from tests.helpers.determinism import assert_files_identical

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "trace.jsonl")


def _run_traced(path, **kwargs):
    config = SSDConfig.small(logical_fraction=0.4)
    return run_simulation(
        config, "OLTP", ftl="cube", queue_depth=8, prefill=0.4,
        n_requests=120, seed=7, trace=path, **kwargs,
    )


class TestGoldenTrace:
    def test_trace_matches_golden(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _run_traced(path)
        assert_files_identical(path, GOLDEN, "trace vs golden")

    def test_trace_matches_golden_with_telemetry_and_profile(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        _run_traced(path, telemetry=True, profile=True)
        assert_files_identical(path, GOLDEN, "instrumented trace vs golden")
