"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCharacterize:
    def test_runs_and_prints_metrics(self, capsys):
        exit_code = main(["characterize", "--chips", "1", "--blocks", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Delta-H" in out
        assert "Delta-V" in out


class TestSimulate:
    def test_small_simulation(self, capsys):
        exit_code = main([
            "simulate", "--ftl", "cube", "--workload", "OLTP",
            "--requests", "300", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.3",
            "--queue-depth", "8",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "cubeFTL" in out
        assert "IOPS" in out
        assert "tPROG" in out

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "bogus"])

    def test_bad_ftl_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--ftl", "bogus"])


class TestCompare:
    def test_three_ftl_comparison(self, capsys):
        exit_code = main([
            "compare", "--workload", "Mail",
            "--requests", "300", "--warmup", "0",
            "--blocks-per-chip", "8", "--prefill", "0.3",
            "--queue-depth", "8",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        for name in ("pageFTL", "vertFTL", "cubeFTL"):
            assert name in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
