"""Resume equivalence: checkpoint + restore + continue must be
byte-identical to the straight-through checkpointing run.

The matrix covers every FTL variant, fresh and aged (2K P/E + 1 yr)
devices, and fault campaigns.  "Byte-identical" is asserted on the
canonical JSON of the schema-v2 result *and* on the checker's
``state_digest`` of the final logical state.
"""

import json

import pytest

from repro.api import run_simulation
from repro.faults import get_campaign
from repro.nand.reliability import AgingState
from repro.persist import latest_checkpoint, list_checkpoints, read_header
from repro.ssd.config import SSDConfig

REQUESTS = 300
EVERY = 100


def _config(aged, faults):
    config = SSDConfig.small()
    if aged:
        config = config.with_aging(AgingState(2000, 12.0))
    if faults is not None:
        config = config.with_faults(get_campaign(faults))
    return config


def _run(config, ftl, out_dir, resume_from=None, **overrides):
    kwargs = dict(
        n_requests=REQUESTS,
        seed=11,
        prefill=0.5,
        check="on",
        checkpoint_every=EVERY,
        checkpoint_dir=str(out_dir),
    )
    kwargs.update(overrides)
    return run_simulation(
        config, "OLTP", ftl=ftl, resume_from=resume_from, **kwargs
    )


def _key(result):
    return (
        json.dumps(result.stats.to_dict(), sort_keys=True),
        result.check["state_digest"],
    )


class TestResumeEquivalence:
    @pytest.mark.parametrize("ftl", ["page", "vert", "cube", "oracle", "dftl"])
    @pytest.mark.parametrize(
        "aged,faults", [(False, None), (True, "default")]
    )
    def test_resume_matches_straight_through(self, tmp_path, ftl, aged, faults):
        config = _config(aged, faults)
        straight = _run(config, ftl, tmp_path / "straight")
        checkpoints = list_checkpoints(str(tmp_path / "straight"))
        assert len(checkpoints) == (REQUESTS - 1) // EVERY
        for checkpoint in checkpoints:
            resumed = _run(
                config, ftl, tmp_path / "resumed", resume_from=checkpoint
            )
            assert _key(resumed) == _key(straight)

    def test_resume_continues_checkpoint_sequence(self, tmp_path):
        config = _config(False, None)
        _run(config, "cube", tmp_path / "a")
        first = list_checkpoints(str(tmp_path / "a"))[0]
        _run(config, "cube", tmp_path / "b", resume_from=first)
        # the resumed run re-writes the later checkpoints into its own dir
        resumed_names = [
            header["segment"]
            for header in map(read_header, list_checkpoints(str(tmp_path / "b")))
        ]
        assert resumed_names == [2]

    def test_checkpoint_headers_are_consistent(self, tmp_path):
        config = _config(False, None)
        _run(config, "cube", tmp_path / "out")
        for index, path in enumerate(list_checkpoints(str(tmp_path / "out"))):
            header = read_header(path)
            assert header["segment"] == index + 1
            assert header["completed"] == (index + 1) * EVERY
            assert header["n_requests"] == REQUESTS
            assert header["checkpoint_every"] == EVERY
            assert header["check"] == "on"

    def test_strict_fuzzlike_seed(self, tmp_path):
        """The acceptance criterion's strict-checker cell: a fault
        campaign under check=strict resumes byte-identically."""
        config = _config(True, "default")
        straight = _run(config, "cube", tmp_path / "s", check="strict")
        checkpoint = latest_checkpoint(str(tmp_path / "s"))
        resumed = _run(
            config, "cube", tmp_path / "r", check="strict",
            resume_from=checkpoint,
        )
        assert _key(resumed) == _key(straight)


class TestGcAndFlushHeavyBarriers:
    def test_tiny_segments_through_gc_pressure(self, tmp_path):
        """A near-full device with single-digit segments forces barrier
        instants right after GC bursts and mid-buffer-flush windows;
        every capture must still find the stack quiescent (the
        state_dict barrier assertions raise otherwise) and resume must
        stay byte-identical."""
        config = SSDConfig.small()
        straight = run_simulation(
            config, "OLTP", ftl="cube", n_requests=120, seed=3,
            prefill=0.9, check="on",
            checkpoint_every=7, checkpoint_dir=str(tmp_path / "s"),
        )
        checkpoints = list_checkpoints(str(tmp_path / "s"))
        assert len(checkpoints) == 17
        # resume from a mid-run checkpoint (GC has already fired by then)
        resumed = run_simulation(
            config, "OLTP", ftl="cube", n_requests=120, seed=3,
            prefill=0.9, check="on",
            resume_from=checkpoints[8], checkpoint_dir=str(tmp_path / "r"),
        )
        assert _key(resumed) == _key(straight)

    def test_non_quiescent_capture_is_refused(self):
        """Freezing the simulation mid-flight (in-flight programs or
        staged host writes) must be impossible: state_dict() raises
        instead of capturing a torn snapshot."""
        from repro.ssd.controller import SSDSimulation
        from repro.workloads import make_workload

        config = SSDConfig.small()
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(0.5)
        trace = make_workload("OLTP", config.logical_pages, 400, seed=11)
        engine = sim.controller.engine
        state = {"outstanding": 0}
        iterator = iter(trace.requests)

        def on_complete(active, now_us):
            state["outstanding"] -= 1
            issue_next()

        def issue_next():
            request = next(iterator, None)
            if request is None:
                return
            state["outstanding"] += 1
            sim.ftl.submit(request, on_complete)

        for _ in range(16):
            issue_next()
        caught = 0
        cursor = engine.now
        for _ in range(40):
            cursor += 200.0
            engine.run(until=cursor)
            if state["outstanding"] == 0:
                break
            try:
                sim.ftl.state_dict()
            except RuntimeError:
                caught += 1
        assert caught > 0, "never caught a non-quiescent instant"
