"""Tests for the three program sequences (Section 4.1.3)."""

import pytest

from repro.core.program_order import (
    ProgramOrder,
    available_followers_after,
    follower_flags,
    horizontal_first,
    max_follower_run,
    mixed_order,
    program_sequence,
    vertical_first,
)
from repro.nand.geometry import WLAddress


@pytest.fixture(params=list(ProgramOrder))
def order(request):
    return request.param


class TestSequencesArePermutations:
    def test_every_order_covers_every_wl_once(self, block_geometry, order):
        sequence = program_sequence(block_geometry, order)
        assert len(sequence) == block_geometry.wls_per_block
        assert len(set(sequence)) == len(sequence)

    def test_small_geometry_too(self, small_geometry, order):
        sequence = program_sequence(small_geometry, order)
        assert len(set(sequence)) == small_geometry.wls_per_block


class TestHorizontalFirst:
    def test_layer_major(self, small_geometry):
        sequence = horizontal_first(small_geometry)
        assert sequence[:4] == [WLAddress(0, wl) for wl in range(4)]
        assert sequence[4] == WLAddress(1, 0)

    def test_leader_every_fourth_write(self, block_geometry):
        flags = follower_flags(block_geometry, ProgramOrder.HORIZONTAL_FIRST)
        leaders = [i for i, is_follower in enumerate(flags) if not is_follower]
        assert leaders == list(range(0, block_geometry.wls_per_block, 4))


class TestVerticalFirst:
    def test_vlayer_major(self, small_geometry):
        sequence = vertical_first(small_geometry)
        n = small_geometry.n_layers
        assert sequence[:n] == [WLAddress(layer, 0) for layer in range(n)]
        assert sequence[n] == WLAddress(0, 1)

    def test_all_leaders_first(self, block_geometry):
        flags = follower_flags(block_geometry, ProgramOrder.VERTICAL_FIRST)
        n = block_geometry.n_layers
        assert not any(flags[:n])
        assert all(flags[n:])


class TestMixedOrder:
    def test_leader_precedes_own_followers(self, block_geometry):
        """Every follower programs after its h-layer's leader."""
        led = set()
        for address in mixed_order(block_geometry):
            if address.wl == 0:
                led.add(address.layer)
            else:
                assert address.layer in led

    def test_leader_pointer_stays_ahead(self, small_geometry):
        """MOS keeps i_Leader ahead of i_Follower throughout."""
        max_led = -1
        for address in mixed_order(small_geometry):
            if address.wl == 0:
                max_led = max(max_led, address.layer)
            else:
                assert address.layer <= max_led


class TestFollowerAvailability:
    def test_max_follower_run_ordering(self, block_geometry):
        """Peak-bandwidth capability: horizontal-first is capped at 3
        consecutive followers; the other orders sustain much longer runs
        (the paper's motivation for MOS)."""
        h = max_follower_run(block_geometry, ProgramOrder.HORIZONTAL_FIRST)
        v = max_follower_run(block_geometry, ProgramOrder.VERTICAL_FIRST)
        m = max_follower_run(block_geometry, ProgramOrder.MIXED)
        assert h == block_geometry.wls_per_layer - 1
        assert v == (block_geometry.wls_per_layer - 1) * block_geometry.n_layers
        assert m > h

    def test_available_followers_grow_fastest_under_vertical(self, block_geometry):
        step = block_geometry.n_layers  # after one v-layer worth of writes
        v = available_followers_after(block_geometry, ProgramOrder.VERTICAL_FIRST, step)
        h = available_followers_after(
            block_geometry, ProgramOrder.HORIZONTAL_FIRST, step
        )
        assert v > h

    def test_available_followers_bounds(self, block_geometry, order):
        total = block_geometry.wls_per_block
        assert available_followers_after(block_geometry, order, 0) == 0
        assert available_followers_after(block_geometry, order, total) == 0

    def test_available_followers_step_validation(self, block_geometry):
        with pytest.raises(ValueError):
            available_followers_after(block_geometry, ProgramOrder.MIXED, -1)


class TestReliabilityEquivalence:
    def test_orders_reliability_equivalent_on_device(self):
        """Fig. 13: the three orders differ by < 3 % (RTN scale)."""
        from repro.characterization.experiments import fig13_program_order_ber

        results = fig13_program_order_ber()
        for name, stats in results.items():
            assert abs(stats["normalized_mean_ber"] - 1.0) < 0.03, name
            assert stats["max_wl_deviation"] < 0.03, name
