"""Trace and metrics analysis: latency breakdowns and timelines.

Turns a span trace into the per-mechanism attribution the paper's
evaluation is built on: how much of a request's latency was *queueing*
(FIFO and buffer waits), *NAND time* (array sense / program), *retry*
(extra sense steps the ORT is meant to eliminate), and *transfer*.

All attribution is per observed page: a WL program serving three host
pages contributes its duration to each of the three (each page really
did spend that time in the stage), so group totals are page-observed
time, not device busy time.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.metrics import MetricsSample
from repro.obs.trace import Span

#: span stages -> report groups (the acceptance-level decomposition)
STAGE_GROUPS: Dict[str, str] = {
    "buffer_wait": "queueing",
    "buffer_staged": "queueing",
    "bus_queue": "queueing",
    "chip_queue": "queueing",
    "nand_read": "nand",
    "nand_program": "nand",
    "read_retry": "retry",
    "recovery_read": "retry",
    "bus_xfer": "transfer",
    "buffer_read": "buffer",
}

GROUP_ORDER = ("queueing", "nand", "retry", "transfer", "buffer")


def load_trace(path: str) -> List[Span]:
    """Read a JSONL trace file back into spans."""
    spans: List[Span] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# per-request decomposition
# ----------------------------------------------------------------------


def request_spans(spans: Iterable[Span]) -> Dict[int, Span]:
    """The end-to-end ``request`` span of each host request."""
    return {
        span.request: span
        for span in spans
        if span.stage == "request" and span.request is not None
    }


def page_chains(
    spans: Iterable[Span],
) -> Dict[Tuple[int, int], List[Span]]:
    """Stage spans grouped per (request, lpn) page, in time order."""
    chains: Dict[Tuple[int, int], List[Span]] = defaultdict(list)
    for span in spans:
        if span.request is None or span.stage == "request":
            continue
        chains[(span.request, span.lpn)].append(span)
    for chain in chains.values():
        chain.sort(key=lambda span: (span.start_us, span.end_us))
    return dict(chains)


def request_breakdown(spans: Sequence[Span]) -> Dict[int, Dict[str, float]]:
    """Per-request page-observed time in each stage group.

    For a one-page request the group values sum to the request's
    end-to-end latency; for an n-page request they sum to the total
    page-observed time (pages progress in parallel).
    """
    breakdown: Dict[int, Dict[str, float]] = defaultdict(
        lambda: {group: 0.0 for group in GROUP_ORDER}
    )
    for span in spans:
        if span.request is None or span.stage == "request":
            continue
        group = STAGE_GROUPS.get(span.stage)
        if group is not None:
            breakdown[span.request][group] += span.duration_us
    return dict(breakdown)


def stage_summary(spans: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    """Per-stage count / total / mean of page-observed time."""
    totals: Dict[str, List[float]] = defaultdict(lambda: [0, 0.0])
    for span in spans:
        if span.request is None or span.stage == "request":
            continue
        entry = totals[span.stage]
        entry[0] += 1
        entry[1] += span.duration_us
    return {
        stage: {
            "count": count,
            "total_us": total,
            "mean_us": total / count if count else 0.0,
        }
        for stage, (count, total) in sorted(totals.items())
    }


def validate_trace(spans: Sequence[Span], tol_us: float = 1e-6) -> List[str]:
    """Check the tiling contract; returns human-readable violations.

    For every traced page the stage spans must (a) start at the
    request's issue time, (b) be contiguous (each span starts where the
    previous ended), and (c) therefore sum to that page's end-to-end
    latency; the request's last page must end at the request span's
    end.  An empty return value means the trace is self-consistent.
    """
    errors: List[str] = []
    requests = request_spans(spans)
    chains = page_chains(spans)
    last_end: Dict[int, float] = defaultdict(float)
    for (request, lpn), chain in chains.items():
        parent = requests.get(request)
        if parent is None:
            errors.append(f"req {request} lpn {lpn}: no request span")
            continue
        if abs(chain[0].start_us - parent.start_us) > tol_us:
            errors.append(
                f"req {request} lpn {lpn}: first span starts at "
                f"{chain[0].start_us}, request issued at {parent.start_us}"
            )
        for previous, current in zip(chain, chain[1:]):
            if abs(current.start_us - previous.end_us) > tol_us:
                errors.append(
                    f"req {request} lpn {lpn}: gap between "
                    f"{previous.stage}@{previous.end_us} and "
                    f"{current.stage}@{current.start_us}"
                )
        total = sum(span.duration_us for span in chain)
        span_latency = chain[-1].end_us - parent.start_us
        if abs(total - span_latency) > tol_us:
            errors.append(
                f"req {request} lpn {lpn}: stage sum {total} != "
                f"page latency {span_latency}"
            )
        last_end[request] = max(last_end[request], chain[-1].end_us)
    for request, parent in requests.items():
        if request not in last_end:
            errors.append(f"req {request}: no page spans")
        elif abs(last_end[request] - parent.end_us) > tol_us:
            errors.append(
                f"req {request}: last page ends at {last_end[request]}, "
                f"request completed at {parent.end_us}"
            )
    return errors


def breakdown_report(spans: Sequence[Span]) -> str:
    """Human-readable per-stage-group latency decomposition.

    Splits host requests into reads and writes and reports, per group,
    the page-observed time and its share -- the table that attributes a
    regression to queueing vs. NAND vs. retry time.
    """
    from repro.analysis.tables import format_table

    requests = request_spans(spans)
    breakdown = request_breakdown(spans)
    by_kind: Dict[str, Dict[str, float]] = {
        "read": {group: 0.0 for group in GROUP_ORDER},
        "write": {group: 0.0 for group in GROUP_ORDER},
    }
    counts = {"read": 0, "write": 0}
    for request, groups in breakdown.items():
        parent = requests.get(request)
        if parent is None:
            continue
        kind = parent.info.get("kind", "read")
        counts[kind] += 1
        for group, value in groups.items():
            by_kind[kind][group] += value
    rows = []
    for kind in ("read", "write"):
        total = sum(by_kind[kind].values())
        if counts[kind] == 0:
            continue
        for group in GROUP_ORDER:
            value = by_kind[kind][group]
            if value == 0.0:
                continue
            rows.append(
                [
                    kind,
                    group,
                    f"{value:.0f}",
                    f"{value / counts[kind]:.1f}",
                    f"{100.0 * value / total:.1f} %" if total else "-",
                ]
            )
    header = ["kind", "stage group", "total us", "us/request", "share"]
    return format_table(header, rows)


# ----------------------------------------------------------------------
# metrics timelines
# ----------------------------------------------------------------------


#: every series :func:`metrics_timeline` emits (beyond ``t_us``); the
#: timeline always carries all of them -- empty on short runs -- so
#: consumers can index keys without guarding against partial dicts
TIMELINE_SERIES = (
    "iops",
    "write_pages_per_s",
    "read_pages_per_s",
    "gc_programs_per_s",
    "erases_per_s",
    "buffer_utilization",
    "free_blocks",
    "follower_fraction",
    "ort_hit_rate",
)


def metrics_timeline(samples: Sequence[MetricsSample]) -> Dict[str, List[float]]:
    """Differentiate cumulative samples into per-interval rates.

    Returns a dict of aligned series keyed by name; ``t_us`` holds the
    interval end times.  Rates are per second of simulated time.  A run
    shorter than one sampling interval (fewer than two distinct-time
    samples) yields the same keys with empty series, never a partial
    dict.
    """
    timeline: Dict[str, List[float]] = {"t_us": []}
    for name in TIMELINE_SERIES:
        timeline[name] = []
    if len(samples) < 2:
        return timeline
    for previous, current in zip(samples, samples[1:]):
        dt_s = (current.t_us - previous.t_us) / 1e6
        if dt_s <= 0:
            continue
        timeline["t_us"].append(current.t_us)
        timeline["iops"].append(
            (current.completed_requests - previous.completed_requests) / dt_s
        )
        timeline["write_pages_per_s"].append(
            (current.host_write_pages - previous.host_write_pages) / dt_s
        )
        timeline["read_pages_per_s"].append(
            (current.host_read_pages - previous.host_read_pages) / dt_s
        )
        timeline["gc_programs_per_s"].append(
            (current.gc_programs - previous.gc_programs) / dt_s
        )
        timeline["erases_per_s"].append((current.erases - previous.erases) / dt_s)
        timeline["buffer_utilization"].append(current.buffer_utilization)
        timeline["free_blocks"].append(float(current.free_blocks))
        timeline["follower_fraction"].append(current.follower_fraction)
        timeline["ort_hit_rate"].append(current.ort_hit_rate)
    return timeline


def metrics_report(samples: Sequence[MetricsSample], width: int = 60) -> str:
    """ASCII timeline of IOPS, buffer utilization and ORT hit rate.

    Degrades gracefully on runs shorter than one sampling interval:
    instead of an empty (or misleading) timeline it reports the final
    snapshot's headline values, so the caller always gets *something*
    truthful to print.
    """
    from repro.analysis.ascii_plot import series_chart

    if not samples:
        return "(no metrics samples recorded)"
    timeline = metrics_timeline(samples)
    xs = timeline["t_us"]
    if len(xs) < 2:
        final = samples[-1]
        return (
            f"(run shorter than one metrics interval: {len(samples)} "
            f"sample(s), no timeline)\n"
            f"final sample @ {final.t_us:.0f} us: "
            f"{final.completed_requests} requests, "
            f"mu={final.buffer_utilization:.2f}, "
            f"free_blocks={final.free_blocks}, "
            f"ort_hit_rate={final.ort_hit_rate:.2f}"
        )
    parts = []
    parts.append("IOPS per interval:")
    parts.append(series_chart(xs, {"iops": timeline["iops"]}, width=width))
    parts.append("")
    parts.append("buffer utilization (mu) / ORT hit rate / follower mix:")
    parts.append(
        series_chart(
            xs,
            {
                "mu": timeline["buffer_utilization"],
                "ort": timeline["ort_hit_rate"],
                "followers": timeline["follower_fraction"],
            },
            width=width,
        )
    )
    return "\n".join(parts)


# ----------------------------------------------------------------------
# telemetry snapshots (registry heatmaps and histograms)
# ----------------------------------------------------------------------


def _series(snapshot: dict, name: str) -> List[dict]:
    instrument = snapshot.get(name)
    return instrument["series"] if instrument else []


def _grid(
    series: List[dict], row_key: str, col_key: str, value
) -> Tuple[List[str], List[str], List[List[float]]]:
    """Pivot labelled series into a dense rows x cols value grid.

    ``value(entry)`` extracts the cell value; missing (row, col)
    combinations become 0.  Label values are sorted numerically where
    possible so die/layer axes come out in device order.
    """

    def order(values):
        try:
            return sorted(values, key=int)
        except (TypeError, ValueError):
            return sorted(values, key=str)

    rows = order({entry["labels"][row_key] for entry in series})
    cols = order({entry["labels"][col_key] for entry in series})
    cells = {
        (entry["labels"][row_key], entry["labels"][col_key]): value(entry)
        for entry in series
    }
    grid = [[cells.get((row, col), 0.0) for col in cols] for row in rows]
    return [str(row) for row in rows], [str(col) for col in cols], grid


def _hist_mean(entry: dict) -> float:
    return entry["sum"] / entry["count"] if entry["count"] else 0.0


def telemetry_report(snapshot: dict, include_histograms: bool = True) -> str:
    """Render a registry snapshot's device telemetry as ASCII heatmaps.

    Sections (each skipped when its instrument recorded nothing):

    - per-die busy time (rows: channel, cols: die) -- load balance
    - per-die x h-layer mean read retries -- where the retry time goes
    - per-h-layer mean tPROG -- the paper's per-WL program-time surface
    - per-h-layer ORT hit rate -- which layers the table is serving
    - die / channel queue-depth histograms -- congestion shape
    """
    from repro.analysis.ascii_plot import heatmap, histogram_chart

    parts: List[str] = []

    busy = _series(snapshot, "chip_busy_us")
    if busy:
        rows, cols, grid = _grid(
            busy, "channel", "die", lambda entry: entry["value"]
        )
        parts.append("die busy time (rows: channel, cols: die, us):")
        parts.append(heatmap(rows, cols, grid, unit=" us"))

    retries = _series(snapshot, "nand_read_retries")
    observed = [entry for entry in retries if entry["count"]]
    if observed:
        rows, cols, grid = _grid(observed, "die", "h_layer", _hist_mean)
        parts.append("")
        parts.append("mean read retries (rows: die, cols: h-layer):")
        parts.append(heatmap(rows, cols, grid))

    programs = _series(snapshot, "nand_program_us")
    observed = [entry for entry in programs if entry["count"]]
    if observed:
        layers = sorted(observed, key=lambda entry: int(entry["labels"]["h_layer"]))
        parts.append("")
        parts.append("mean tPROG per h-layer (us):")
        parts.append(
            heatmap(
                ["tPROG"],
                [str(entry["labels"]["h_layer"]) for entry in layers],
                [[_hist_mean(entry) for entry in layers]],
                unit=" us",
            )
        )

    lookups = _series(snapshot, "ort_lookups")
    if lookups:
        per_layer: Dict[str, Dict[str, float]] = defaultdict(
            lambda: {"hit": 0.0, "miss": 0.0}
        )
        for entry in lookups:
            labels = entry["labels"]
            per_layer[labels["h_layer"]][labels["outcome"]] = entry["value"]
        layers = sorted(per_layer, key=int)
        rates = []
        for layer in layers:
            counts = per_layer[layer]
            total = counts["hit"] + counts["miss"]
            rates.append(counts["hit"] / total if total else 0.0)
        parts.append("")
        parts.append("ORT hit rate per h-layer:")
        parts.append(heatmap(["hit rate"], layers, [rates]))

    if include_histograms:
        for name, title in (
            ("chip_queue_depth", "die FIFO queue depth at arrival (all dies):"),
            ("bus_queue_depth", "channel FIFO queue depth at arrival:"),
        ):
            series = _series(snapshot, name)
            if not series:
                continue
            merged: Dict[str, int] = {}
            for entry in series:
                for bucket, count in entry["buckets"].items():
                    merged[bucket] = merged.get(bucket, 0) + count
            if not sum(merged.values()):
                continue
            parts.append("")
            parts.append(title)
            parts.append(histogram_chart(merged))

    if not parts:
        return "(telemetry snapshot contains no device series)"
    return "\n".join(part for part in parts)
