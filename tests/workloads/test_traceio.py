"""Tests for trace save/load."""

import pytest

from repro.workloads.base import Trace
from repro.workloads.filebench import oltp_trace
from repro.workloads.traceio import TraceFormatError, load_trace, save_trace


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        original = oltp_trace(5000, 200, seed=3)
        path = tmp_path / "oltp.trace"
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.name == original.name
        assert loaded.logical_pages == original.logical_pages
        assert list(loaded) == list(original)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        save_trace(Trace("empty", 100), path)
        loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.logical_pages == 100


class TestParsing:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 0 1\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\nR 0\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_bad_op(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\nX 0 1\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_request_exceeding_space(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("# repro-trace v1\n# logical_pages=10\nW 9 5\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_infers_logical_pages_when_absent(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# repro-trace v1\nW 10 4\nR 2 1\n")
        loaded = load_trace(path)
        assert loaded.logical_pages == 14
        assert loaded.name == "t"

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(
            "# repro-trace v1\n# name=demo logical_pages=50\n\n# hi\nW 1 1\n"
        )
        loaded = load_trace(path)
        assert loaded.name == "demo"
        assert len(loaded) == 1
