"""The telemetry registry: instruments, labels, snapshots."""

import json

import pytest

from repro.obs.registry import CardinalityError, TelemetryRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = TelemetryRegistry()
        counter = registry.counter("ops", "operations")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3

    def test_negative_increment_rejected(self):
        counter = TelemetryRegistry().counter("ops", "operations")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        registry = TelemetryRegistry()
        ops = registry.counter("nand_ops", "ops", labelnames=("die", "op"))
        ops.labels(die=0, op="read").inc()
        ops.labels(die=0, op="read").inc()
        ops.labels(die=1, op="read").inc()
        assert ops.labels(die=0, op="read").value == 2
        assert ops.labels(die=1, op="read").value == 1

    def test_label_names_must_match_declaration(self):
        ops = TelemetryRegistry().counter("ops", "ops", labelnames=("die",))
        with pytest.raises(ValueError):
            ops.labels(channel=0)


class TestGauge:
    def test_set_and_inc(self):
        gauge = TelemetryRegistry().gauge("depth", "queue depth")
        gauge.set(4.0)
        gauge.inc(-1.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_bucket_edges_assign_observations(self):
        hist = TelemetryRegistry().histogram("lat", "latency", buckets=(1, 2, 4))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        # buckets are non-cumulative: <=1, <=2, <=4, overflow
        assert hist.bucket_counts() == {"1": 2, "2": 1, "4": 1, "+inf": 1}
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.0)
        assert hist.mean == pytest.approx(106.0 / 5)

    def test_edge_value_lands_in_lower_bucket(self):
        hist = TelemetryRegistry().histogram("lat", "latency", buckets=(1, 2))
        hist.observe(2)
        assert hist.bucket_counts()["2"] == 1
        assert hist.bucket_counts()["+inf"] == 0

    def test_edges_must_increase(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", "x", buckets=(1, 1, 2))
        with pytest.raises(ValueError):
            registry.histogram("bad2", "x", buckets=())


class TestRegistry:
    def test_declare_once_returns_same_instrument(self):
        registry = TelemetryRegistry()
        first = registry.counter("ops", "operations")
        again = registry.counter("ops", "operations")
        assert first is again

    def test_kind_mismatch_rejected(self):
        registry = TelemetryRegistry()
        registry.counter("ops", "operations")
        with pytest.raises(ValueError):
            registry.gauge("ops", "operations")

    def test_cardinality_limit(self):
        registry = TelemetryRegistry()
        ops = registry.counter("ops", "ops", labelnames=("i",))
        limit = 64
        ops._max_series = limit
        for index in range(limit):
            ops.labels(i=index).inc()
        with pytest.raises(CardinalityError):
            ops.labels(i=limit).inc()

    def test_collectors_run_at_snapshot(self):
        registry = TelemetryRegistry()
        gauge = registry.gauge("free", "free blocks")
        state = {"free": 11}
        registry.add_collector(lambda: gauge.set(state["free"]))
        state["free"] = 7
        snap = registry.snapshot()
        assert snap["free"]["series"][0]["value"] == 7

    def test_snapshot_deterministic_and_json_safe(self):
        def build():
            registry = TelemetryRegistry()
            ops = registry.counter("ops", "ops", labelnames=("die",))
            lat = registry.histogram(
                "lat", "latency", buckets=(1, 4), labelnames=("die",)
            )
            # touch series in different orders: output must not care
            for die in (3, 0, 2, 1):
                ops.labels(die=die).inc(die)
                lat.labels(die=die).observe(die)
            return registry.snapshot()

        first = json.dumps(build(), sort_keys=False)
        second = json.dumps(build(), sort_keys=False)
        assert first == second
        series = json.loads(first)["ops"]["series"]
        assert [entry["labels"]["die"] for entry in series] == ["0", "1", "2", "3"]

    def test_instrument_metadata_in_snapshot(self):
        registry = TelemetryRegistry()
        registry.counter("ops", "operations serviced", unit="ops")
        snap = registry.snapshot()
        assert snap["ops"]["help"] == "operations serviced"
        assert snap["ops"]["kind"] == "counter"
        assert snap["ops"]["unit"] == "ops"
