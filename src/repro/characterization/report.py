"""Render a full characterization report as markdown.

Bundles the Section 3 study results (Figs. 5/6) and the Section 4
technique-level measurements (Figs. 8/10/11/13/14) into one document --
the artifact a flash vendor's characterization team would hand to the
firmware team.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import format_table
from repro.characterization import experiments as exp
from repro.characterization.harness import CharacterizationStudy
from repro.nand.reliability import AgingState


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def build_report(study: CharacterizationStudy) -> str:
    """Generate the full markdown report for one study."""
    parts: List[str] = [
        "# 3D NAND process-characterization report",
        "",
        f"- chips: {study.config.n_chips}",
        f"- blocks: {study.config.total_blocks}",
        f"- WLs: {study.config.total_wls}",
        f"- pages: {study.config.total_pages}",
        "",
    ]

    # intra-layer similarity
    intra = exp.fig5_intra_layer_ber(study, AgingState(2000, 12.0))
    rows = [
        [name, stats["layer"], f"{stats['delta_h']:.4f}"]
        for name, stats in intra.items()
    ]
    parts.append(_section(
        "Intra-layer similarity (Delta-H, 2K P/E + 1 yr)",
        format_table(["h-layer", "index", "Delta-H"], rows),
    ))

    # inter-layer variability
    inter = exp.fig6_inter_layer_ber(
        study,
        [AgingState(0, 0), AgingState(2000, 1.0), AgingState(2000, 12.0)],
    )
    rows = [
        [f"{pe} P/E + {ret} mo", f"{stats['delta_v']:.2f}"]
        for (pe, ret), stats in inter.items()
    ]
    parts.append(_section(
        "Inter-layer variability (Delta-V)",
        format_table(["condition", "Delta-V"], rows),
    ))

    # per-block spread
    spread = exp.fig6d_per_block_delta_v(study, AgingState(2000, 1.0))
    parts.append(_section(
        "Per-block Delta-V spread",
        f"block I: {spread['delta_v_block_i']:.3f}\n"
        f"block II: {spread['delta_v_block_ii']:.3f}\n"
        f"spread: {100 * (spread['spread_ratio'] - 1):.1f} %",
    ))

    # verify skipping
    skips = exp.fig8a_ber_vs_skips()
    reduction = skips["t_prog_reduction"]
    rows = [[f"P{s}", skips[s]["safe_skips"]] for s in range(1, 8)]
    parts.append(_section(
        "Safe verify skips per program state",
        format_table(["state", "N_skip"], rows)
        + f"\n\nfull plan: tPROG -{100 * reduction['reduction_fraction']:.1f} %",
    ))

    # margin conversion
    conversion = exp.fig11b_margin_conversion()
    rows = [
        [s_m, round(stats["margin_mv"]),
         f"{100 * stats['t_prog_reduction']:.1f} %"]
        for s_m, stats in conversion.items()
    ]
    parts.append(_section(
        "S_M -> window margin -> tPROG reduction",
        format_table(["S_M", "margin (mV)", "tPROG reduction"], rows),
    ))

    # program orders
    orders = exp.fig13_program_order_ber()
    rows = [
        [name, f"{stats['normalized_mean_ber']:.4f}",
         f"{100 * stats['max_wl_deviation']:.2f} %"]
        for name, stats in orders.items()
    ]
    parts.append(_section(
        "Program-order reliability equivalence",
        format_table(["sequence", "norm. BER", "max WL deviation"], rows),
    ))

    # read retries
    retries = exp.fig14_read_retry_distribution(n_blocks=6)
    parts.append(_section(
        "PS-aware read-retry reduction (2K P/E + 1 yr)",
        f"PS-unaware mean NumRetry: {retries['unaware_mean']:.2f}\n"
        f"PS-aware mean NumRetry:   {retries['aware_mean']:.2f}\n"
        f"reduction: {100 * retries['reduction']:.1f} %",
    ))

    return "\n".join(parts)
