"""Tests for the contract-rule analyzer (obs.contract)."""

import pytest

from repro.obs.contract import (
    alignment_score,
    analyze_contract,
    contract_report,
    death_time_grouping_score,
    sequentiality_score,
    spatial_locality_score,
    temporal_locality_score,
)
from repro.workloads.base import IORequest, Trace
from repro.workloads.synthetic import sequential_trace, uniform_random_trace


def _trace(requests, logical_pages=1000, name="t"):
    trace = Trace(name, logical_pages)
    for op, lpn, n_pages in requests:
        trace.append(IORequest(op, lpn, n_pages))
    return trace


class TestAlignment:
    def test_aligned_stream_scores_one(self):
        trace = _trace([("W", 0, 3), ("W", 3, 6), ("R", 9, 3)])
        assert alignment_score(trace, align_pages=3) == 1.0

    def test_misaligned_stream_scores_zero(self):
        trace = _trace([("W", 1, 3), ("W", 4, 2), ("R", 8, 1)])
        assert alignment_score(trace, align_pages=3) == 0.0

    def test_mixed(self):
        trace = _trace([("W", 0, 3), ("W", 1, 3)])
        assert alignment_score(trace, align_pages=3) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            alignment_score(_trace([]), align_pages=0)


class TestSequentiality:
    def test_perfectly_sequential(self):
        trace = sequential_trace(1000, 50, seed=1)
        assert sequentiality_score(trace) == 1.0

    def test_random_is_near_zero(self):
        trace = uniform_random_trace(100_000, 200, seed=1)
        assert sequentiality_score(trace) < 0.05

    def test_short_trace(self):
        assert sequentiality_score(_trace([("W", 0, 1)])) == 0.0


class TestLocality:
    def test_reuse_is_temporal_locality(self):
        trace = _trace([("W", 5, 1), ("R", 5, 1), ("W", 5, 1), ("W", 9, 1)])
        assert temporal_locality_score(trace) == 0.5

    def test_nearby_is_spatial_locality(self):
        trace = _trace([("W", 0, 1), ("W", 4, 1), ("W", 500, 1)])
        assert spatial_locality_score(trace, radius_pages=8) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            spatial_locality_score(_trace([]), radius_pages=-1)


class TestDeathTimeGrouping:
    def test_grouped_overwrites_score_high(self):
        """Pages written together and overwritten together (whole-file
        rewrite pattern) are perfectly grouped."""
        rounds = [("W", 0, 8), ("W", 8, 8)] * 6
        trace = _trace(rounds)
        assert death_time_grouping_score(trace, group_pages=8) > 0.9

    def test_scattered_overwrites_score_lower(self):
        """Interleaving one hot page into every group spreads each
        group's death times across the trace."""
        grouped = _trace([("W", 0, 8), ("W", 8, 8)] * 6)
        requests = []
        for index in range(48):
            requests.append(("W", (index * 7) % 97, 1))
            requests.append(("W", 97, 1))  # hot page dies every round
        scattered = _trace(requests)
        assert death_time_grouping_score(
            scattered, group_pages=8
        ) < death_time_grouping_score(grouped, group_pages=8)

    def test_too_few_pages(self):
        assert death_time_grouping_score(_trace([("W", 0, 1)])) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            death_time_grouping_score(_trace([]), group_pages=1)


class TestAnalyze:
    def test_scores_in_unit_interval_and_deterministic(self):
        trace = uniform_random_trace(10_000, 500, seed=7)
        one = analyze_contract(trace)
        two = analyze_contract(trace)
        assert one == two
        for key in ("alignment", "sequentiality", "temporal_locality",
                    "spatial_locality", "death_time_grouping"):
            assert 0.0 <= one[key] <= 1.0

    def test_report_renders_every_rule(self):
        trace = sequential_trace(1000, 20, seed=1)
        report = contract_report(analyze_contract(trace))
        for key in ("alignment", "sequentiality", "temporal_locality",
                    "spatial_locality", "death_time_grouping"):
            assert key in report
