"""Study the three program sequences and the WAM's adaptive allocation.

Part 1 reproduces Fig. 13: programming whole blocks horizontal-first,
vertical-first, and mixed-order is reliability-equivalent on 3D NAND.

Part 2 shows *why* the order matters anyway: the number of fast follower
WLs available after k writes -- the quantity that bounds burst-write
bandwidth -- differs drastically between the orders, and the WAM exploits
exactly that freedom (Section 5.2).

Run:  python examples/program_order_study.py
"""

from repro.analysis.tables import format_table
from repro.characterization.experiments import fig13_program_order_ber
from repro.core.program_order import (
    ProgramOrder,
    available_followers_after,
    max_follower_run,
)
from repro.core.wam import WLAllocationManager
from repro.nand.geometry import BlockGeometry


def main() -> None:
    geometry = BlockGeometry()

    print("== Part 1: reliability equivalence (Fig. 13) ==")
    results = fig13_program_order_ber()
    rows = [
        [name, f"{stats['normalized_mean_ber']:.4f}",
         f"{100 * stats['max_wl_deviation']:.2f} %"]
        for name, stats in results.items()
    ]
    print(format_table(["sequence", "normalized BER", "max WL deviation"], rows))

    print("\n== Part 2: follower availability over time ==")
    steps = [12, 48, 96, 144]
    rows = []
    for order in ProgramOrder:
        rows.append(
            [order.value, max_follower_run(geometry, order)]
            + [available_followers_after(geometry, order, step) for step in steps]
        )
    print(format_table(
        ["sequence", "max run"] + [f"after {s} WLs" for s in steps], rows
    ))

    print("\n== Part 3: the WAM in action ==")
    wam = WLAllocationManager(geometry, active_blocks_per_chip=2, mu_threshold=0.9)
    wam.install_block(0, 0)
    wam.install_block(0, 1)
    # calm period: mu low -> leaders, banking followers for later
    for _ in range(6):
        wam.allocate(0, utilization=0.4)
    banked = wam.free_wls(0)
    print(f"after 6 calm writes: {wam.leader_allocations} leaders programmed, "
          f"follower pool ready")
    # burst: mu above the threshold -> followers absorb it
    burst = [wam.allocate(0, utilization=0.97) for _ in range(12)]
    followers = sum(1 for a in burst if not a.is_leader)
    print(f"12-write burst at mu=0.97: {followers}/12 served by fast followers")


if __name__ == "__main__":
    main()
