"""Package-surface tests: lazy exports and version."""

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "BlockGeometry",
            "SSDGeometry",
            "PageAddress",
            "WLAddress",
            "NandTiming",
            "ReliabilityModel",
            "AgingState",
            "NandChip",
            "SSDConfig",
            "PageFTL",
            "VertFTL",
            "CubeFTL",
            "make_ftl",
            "SSDSimulation",
        ],
    )
    def test_lazy_export_resolves(self, name):
        assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_dir_lists_exports(self):
        listing = dir(repro)
        assert "NandChip" in listing
        assert "SSDSimulation" in listing

    def test_exports_are_the_real_classes(self):
        from repro.nand.chip import NandChip

        assert repro.NandChip is NandChip
