"""Tests for the read-retry model (Section 2.3 / 4.2 calibration)."""

import numpy as np
import pytest

from repro.nand.read_retry import MAX_OFFSET, ReadParams, ReadRetryModel
from repro.nand.reliability import AgingState


@pytest.fixture
def model(reliability):
    return ReadRetryModel(reliability)


class TestReadParams:
    def test_default_offset_zero(self):
        assert ReadParams().offset_hint == 0

    def test_range_validation(self):
        with pytest.raises(ValueError):
            ReadParams(offset_hint=-1)
        with pytest.raises(ValueError):
            ReadParams(offset_hint=MAX_OFFSET + 1)


class TestStableOptimal:
    def test_fresh_state_never_drifts(self, model, fresh):
        for block in range(8):
            for layer in range(0, 48, 5):
                assert model.stable_optimal(0, block, layer, fresh) == 0

    def test_intra_layer_similarity(self, model, aged_eol):
        """All WLs of an h-layer share one optimal offset by construction
        (the model keys only on the h-layer)."""
        value = model.stable_optimal(0, 0, 20, aged_eol)
        assert value == model.stable_optimal(0, 0, 20, aged_eol)

    def test_bounded(self, model, aged_eol):
        for block in range(8):
            for layer in range(48):
                assert 0 <= model.stable_optimal(0, block, layer, aged_eol) <= MAX_OFFSET

    def test_worse_layers_drift_more(self, model, reliability, aged_eol):
        drifts = [
            model.stable_optimal(0, block, reliability.layer_kappa, aged_eol)
            - model.stable_optimal(0, block, reliability.layer_beta, aged_eol)
            for block in range(16)
        ]
        assert np.mean(drifts) > 0

    def test_monotone_in_retention(self, model):
        drift_short = np.mean(
            [
                model.stable_optimal(0, b, 30, AgingState(2000, 1.0))
                for b in range(16)
            ]
        )
        drift_long = np.mean(
            [
                model.stable_optimal(0, b, 30, AgingState(2000, 12.0))
                for b in range(16)
            ]
        )
        assert drift_long > drift_short


class TestPaperRetryFractions:
    """Section 6.1: no retries fresh; ~30 % of reads retry at 2 K + 1 mo;
    ~90 % at 2 K + 1 yr (reads started from default references)."""

    def _retry_fraction(self, model, aging, n_blocks=24):
        retries = []
        nonce = 0
        for block in range(n_blocks):
            for layer in range(48):
                for _ in range(2):
                    optimal = model.read_optimal(0, block, layer, aging, nonce)
                    nonce += 1
                    retries.append(model.retries_needed(0, optimal))
        return np.asarray(retries)

    def test_fresh_no_retries(self, model, fresh):
        assert (self._retry_fraction(model, fresh) == 0).all()

    def test_one_month_about_30_percent(self, model):
        retries = self._retry_fraction(model, AgingState(2000, 1.0))
        fraction = (retries > 0).mean()
        assert 0.2 <= fraction <= 0.42

    def test_one_year_about_90_percent(self, model):
        retries = self._retry_fraction(model, AgingState(2000, 12.0))
        fraction = (retries > 0).mean()
        assert 0.8 <= fraction <= 0.98
        assert 1.8 <= retries.mean() <= 3.5


class TestReadOptimal:
    def test_transients_bounded_to_one_step(self, model, aged_eol):
        stable = model.stable_optimal(0, 0, 30, aged_eol)
        for nonce in range(200):
            value = model.read_optimal(0, 0, 30, aged_eol, nonce)
            assert abs(value - stable) <= 1

    def test_transient_rate(self, model, aged_eol):
        stable = model.stable_optimal(0, 0, 30, aged_eol)
        deviations = [
            model.read_optimal(0, 0, 30, aged_eol, nonce) != stable
            for nonce in range(2000)
        ]
        assert 0.1 <= np.mean(deviations) <= 0.4

    def test_deterministic_per_nonce(self, model, aged_eol):
        assert model.read_optimal(0, 1, 5, aged_eol, 42) == model.read_optimal(
            0, 1, 5, aged_eol, 42
        )


class TestRetriesNeeded:
    def test_exact_hint_needs_no_retry(self):
        assert ReadRetryModel.retries_needed(3, 3) == 0

    def test_distance(self):
        assert ReadRetryModel.retries_needed(0, 4) == 4
        assert ReadRetryModel.retries_needed(5, 3) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadRetryModel.retries_needed(-1, 0)
        with pytest.raises(ValueError):
            ReadRetryModel.retries_needed(0, MAX_OFFSET + 1)

    def test_constructor_validation(self, reliability):
        with pytest.raises(ValueError):
            ReadRetryModel(reliability, transient_prob=1.5)
