"""Time-sliced metrics sampling: alignment, monotonicity, no distortion."""

import pytest

from repro.api import run_simulation
from repro.obs.analyze import metrics_report, metrics_timeline
from repro.obs.metrics import MetricsSampler
from repro.ssd.config import SSDConfig


def _run(metrics_interval=None, **kwargs):
    config = SSDConfig.small(logical_fraction=0.4)
    defaults = dict(
        queue_depth=8, warmup_requests=0, prefill=0.4, n_requests=300, seed=7
    )
    defaults.update(kwargs)
    return run_simulation(
        config, "OLTP", ftl="cube", metrics_interval=metrics_interval,
        **defaults,
    )


class TestSampler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MetricsSampler(None, 0.0)

    def test_samples_cover_run(self):
        result = _run(metrics_interval=500.0)
        samples = result.metrics
        assert samples is not None and len(samples) >= 3
        assert samples[0].t_us == 0.0
        times = [sample.t_us for sample in samples]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_cumulative_counters_monotonic(self):
        samples = _run(metrics_interval=500.0).metrics
        for name in ("completed_requests", "flash_programs", "host_write_pages",
                     "erases", "vfy_skipped"):
            series = [getattr(sample, name) for sample in samples]
            assert series == sorted(series), name

    def test_final_sample_aligns_with_stats(self):
        result = _run(metrics_interval=500.0)
        stats, last = result.stats, result.metrics[-1]
        assert last.completed_requests == stats.completed_requests
        assert last.flash_programs == stats.counters.flash_programs
        assert last.erases == stats.counters.erases
        assert last.program_time_us == stats.counters.program_time_us

    def test_sampling_does_not_distort_stats(self):
        plain = _run().stats.to_dict()
        sampled = _run(metrics_interval=500.0).stats.to_dict()
        sampled.pop("metrics")
        assert sampled == plain

    def test_sample_serialization(self):
        import json

        samples = _run(metrics_interval=500.0).metrics
        payload = json.loads(json.dumps([sample.to_dict() for sample in samples]))
        assert payload[-1]["completed_requests"] == samples[-1].completed_requests
        assert 0.0 <= payload[-1]["ort_hit_rate"] <= 1.0


class TestTimeline:
    def test_rates_from_cumulative(self):
        samples = _run(metrics_interval=500.0).metrics
        timeline = metrics_timeline(samples)
        assert len(timeline["iops"]) == len(timeline["t_us"])
        assert any(rate > 0 for rate in timeline["iops"])

    def test_short_run_degrades_gracefully(self):
        from repro.obs.analyze import TIMELINE_SERIES

        samples = _run(metrics_interval=500.0).metrics
        timeline = metrics_timeline(samples[:1])
        # every series key is present (just empty), so consumers that
        # index timeline["iops"] etc. never KeyError on short runs
        assert timeline["t_us"] == []
        for key in TIMELINE_SERIES:
            assert timeline[key] == []
        report = metrics_report(samples[:1])
        assert "shorter than one metrics interval" in report
        assert "final sample" in report

    def test_no_samples_report(self):
        assert "no metrics samples" in metrics_report([])

    def test_report_renders(self):
        samples = _run(metrics_interval=500.0).metrics
        report = metrics_report(samples)
        assert "IOPS" in report
        assert "mu" in report
