"""Compare pageFTL, vertFTL, and cubeFTL on a full SSD simulation.

Replays one of the paper's six workloads against the three FTLs at a
chosen aging state and prints IOPS (normalized over pageFTL), latency
percentiles, and the operation counters that explain the difference --
a single-workload slice of the paper's Fig. 17.

Run:  python examples/ssd_workload_comparison.py [workload] [pe] [retention_months]
e.g.  python examples/ssd_workload_comparison.py Proxy 2000 12
"""

import sys

from repro.analysis.tables import format_table
from repro.api import run_simulation
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.nand.reliability import AgingState
from repro.ssd.config import SSDConfig


def main(workload: str = "OLTP", pe: int = 0, retention: float = 0.0) -> None:
    geometry = SSDGeometry(
        n_channels=2, chips_per_channel=4, blocks_per_chip=48,
        block=BlockGeometry(),
    )
    config = SSDConfig(geometry=geometry).with_aging(AgingState(pe, retention))
    print(f"workload={workload}, aging={pe} P/E + {retention} months, "
          f"device={geometry.total_bytes / 2**30:.1f} GiB\n")

    rows = []
    base_iops = None
    for ftl in ("page", "vert", "cube"):
        stats = run_simulation(
            config, workload, ftl=ftl, queue_depth=32, warmup_requests=2500,
            prefill=0.9, n_requests=8000, seed=7,
        ).stats
        if base_iops is None:
            base_iops = stats.iops
        counters = stats.counters
        total_programs = counters.flash_programs + counters.gc_programs
        rows.append([
            stats.ftl_name,
            f"{stats.iops:.0f}",
            f"{stats.iops / base_iops:.2f}",
            f"{counters.mean_t_prog_us:.0f}",
            f"{counters.mean_num_retry:.2f}",
            f"{100 * counters.follower_programs / max(1, total_programs):.0f} %",
            f"{stats.write_latency.percentile(90):.0f}",
            f"{stats.read_latency.percentile(90):.0f}",
        ])
    print(format_table(
        ["FTL", "IOPS", "norm", "tPROG us", "retries/read", "followers",
         "write p90 us", "read p90 us"],
        rows,
    ))


if __name__ == "__main__":
    workload = sys.argv[1] if len(sys.argv) > 1 else "OLTP"
    pe = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    retention = float(sys.argv[3]) if len(sys.argv) > 3 else 0.0
    main(workload, pe, retention)
