"""Device-level telemetry: per-die / per-channel / per-h-layer signals.

:func:`attach_device_telemetry` wires a
:class:`~repro.obs.registry.TelemetryRegistry` into a built simulation:
chip-model hooks (reads, programs, erases, per-h-layer retry counts),
FIFO-resource hooks (busy time and arrival queue depth per die and per
channel), the event engine (events processed, peak queue length), the
ORT (per-h-layer hit/miss counts), and the FTL counter collectors.

The hooks only *record*: they never schedule events or mutate simulated
state, so an attached registry cannot change any simulated result.
With no registry attached, every hook site is one ``is None`` test.

Instrument catalog (see docs/OBSERVABILITY.md for the full table):

===========================  =========  ====================  =========
name                         type       labels                unit
===========================  =========  ====================  =========
``chip_busy_us``             counter    die, channel          us
``chip_queue_depth``         histogram  die                   jobs
``bus_busy_us``              counter    channel               us
``bus_queue_depth``          histogram  channel               jobs
``nand_ops``                 counter    die, op               ops
``nand_read_retries``        histogram  die, h_layer          retries
``nand_program_us``          histogram  h_layer               us
``ort_lookups``              counter    h_layer, outcome      lookups
``ftl_counter``              gauge      ftl, counter          (mixed)
``ftl_recovery``             gauge      ftl, event            events
``buffer_utilization``       gauge      ftl                   fraction
``buffer_occupancy``         gauge      ftl                   pages
``free_blocks``              gauge      ftl                   blocks
``ort_entries``              gauge      ftl                   entries
``ort_hit_rate``             gauge      ftl                   fraction
``engine_events_processed``  gauge      --                    events
``engine_peak_pending``      gauge      --                    events
``engine_now_us``            gauge      --                    us
===========================  =========  ====================  =========
"""

from __future__ import annotations

from repro.obs.registry import (
    QUEUE_DEPTH_BUCKETS,
    RETRY_BUCKETS,
    Counter,
    Histogram,
    TelemetryRegistry,
    bind_engine,
    bind_ftl,
)

#: bucket upper edges for per-WL program latency (us); spans the default
#: timing model from heavily VFY-skipped followers to env-shifted leaders
PROGRAM_US_BUCKETS = (400, 600, 800, 1000, 1200, 1600, 2000)


class ChipTelemetry:
    """Recording hooks one :class:`~repro.nand.chip.NandChip` calls into.

    Label children are resolved lazily on first use and memoized in
    plain dicts: ``labels(...)`` builds a kwargs dict and a sorted key
    per call, which dominated the recording cost on the per-read hot
    path.  Children still only come into existence when the matching
    operation first occurs, so the serialized snapshot shape is
    identical to uncached recording.
    """

    __slots__ = (
        "die", "_ops", "_retries", "_program_us",
        "_op_children", "_retry_children", "_program_children",
    )

    def __init__(self, registry: TelemetryRegistry, die: int) -> None:
        self.die = die
        self._ops = registry.counter(
            "nand_ops", "NAND operations executed per die",
            unit="ops", labelnames=("die", "op"),
        )
        self._retries = registry.histogram(
            "nand_read_retries",
            "read retries per page read, resolved per die and h-layer",
            unit="retries", labelnames=("die", "h_layer"),
            buckets=RETRY_BUCKETS,
        )
        self._program_us = registry.histogram(
            "nand_program_us", "per-WL program latency, resolved per h-layer",
            unit="us", labelnames=("h_layer",), buckets=PROGRAM_US_BUCKETS,
        )
        self._op_children = {}
        self._retry_children = {}
        self._program_children = {}

    def _op_child(self, op: str):
        child = self._op_children.get(op)
        if child is None:
            child = self._ops.labels(die=self.die, op=op)
            self._op_children[op] = child
        return child

    def record_read(self, layer: int, num_retry: int) -> None:
        self._op_child("read").inc()
        child = self._retry_children.get(layer)
        if child is None:
            child = self._retries.labels(die=self.die, h_layer=layer)
            self._retry_children[layer] = child
        child.observe(num_retry)

    def record_program(self, layer: int, t_prog_us: float) -> None:
        self._op_child("program").inc()
        child = self._program_children.get(layer)
        if child is None:
            child = self._program_us.labels(h_layer=layer)
            self._program_children[layer] = child
        child.observe(t_prog_us)

    def record_erase(self) -> None:
        self._op_child("erase").inc()


class ResourceTelemetry:
    """Recording hooks one :class:`~repro.sim.resources.FifoResource`
    calls into (arrival queue depth, accumulated service time)."""

    __slots__ = ("_depth", "_busy")

    def __init__(self, depth: Histogram, busy: Counter) -> None:
        self._depth = depth
        self._busy = busy

    def record_arrival(self, depth: int) -> None:
        self._depth.observe(depth)

    def record_service(self, duration_us: float) -> None:
        self._busy.inc(duration_us)


class OrtTelemetry:
    """Recording hook the ORT calls into on each lookup."""

    __slots__ = ("_lookups",)

    def __init__(self, registry: TelemetryRegistry) -> None:
        self._lookups = registry.counter(
            "ort_lookups", "ORT lookups per h-layer, split by outcome",
            unit="lookups", labelnames=("h_layer", "outcome"),
        )

    def record_lookup(self, layer: int, hit: bool) -> None:
        outcome = "hit" if hit else "miss"
        self._lookups.labels(h_layer=layer, outcome=outcome).inc()


def attach_device_telemetry(
    registry: TelemetryRegistry, controller, ftl
) -> None:
    """Wire a registry into a built controller + FTL pair.

    Must run before the simulation starts (hooks are snapshot-free
    recording callbacks; attaching mid-run would merely miss the
    operations already executed).
    """
    geometry = controller.config.geometry
    chip_depth = registry.histogram(
        "chip_queue_depth", "die-FIFO queue depth seen by each arriving job",
        unit="jobs", labelnames=("die",), buckets=QUEUE_DEPTH_BUCKETS,
    )
    chip_busy = registry.counter(
        "chip_busy_us", "accumulated die service time",
        unit="us", labelnames=("die", "channel"),
    )
    bus_depth = registry.histogram(
        "bus_queue_depth", "channel-FIFO queue depth seen by each arriving job",
        unit="jobs", labelnames=("channel",), buckets=QUEUE_DEPTH_BUCKETS,
    )
    bus_busy = registry.counter(
        "bus_busy_us", "accumulated channel transfer time",
        unit="us", labelnames=("channel",),
    )
    for chip_id, chip in enumerate(controller.chips):
        chip.telemetry = ChipTelemetry(registry, die=chip_id)
        channel = geometry.channel_of_chip(chip_id)
        controller.chip_resource(chip_id).telemetry = ResourceTelemetry(
            chip_depth.labels(die=chip_id),
            chip_busy.labels(die=chip_id, channel=channel),
        )
    for channel in range(geometry.n_channels):
        controller._bus_resources[channel].telemetry = ResourceTelemetry(
            bus_depth.labels(channel=channel),
            bus_busy.labels(channel=channel),
        )
    opm = getattr(ftl, "opm", None)
    if opm is not None:
        opm.ort.telemetry = OrtTelemetry(registry)
    bind_engine(registry, controller.engine)
    bind_ftl(registry, ftl)
    if getattr(ftl, "dftl_stats", None) is not None:
        _bind_dftl(registry, ftl)


def _bind_dftl(registry: TelemetryRegistry, ftl) -> None:
    """Demand-paged mapping instruments (dftl only): CMT hit/miss/
    eviction counters, translation-path flash traffic, and the live CMT
    occupancy -- read back from the FTL's live stats at snapshot time,
    like the :func:`~repro.obs.registry.bind_ftl` gauges."""
    hits = registry.gauge(
        "dftl_cmt_hits_total", "reads resolved from the cached mapping table"
    )
    misses = registry.gauge(
        "dftl_cmt_misses_total",
        "reads that paid a translation-page fetch (CMT miss)",
    )
    evictions = registry.gauge(
        "dftl_cmt_evictions_total", "CMT evictions, split by dirty bit",
        labelnames=("dirty",),
    )
    trans = registry.gauge(
        "dftl_translation_ops_total",
        "translation-page flash traffic (demand reads, writebacks, "
        "translation-GC reads/programs/erases)",
        unit="ops", labelnames=("op",),
    )
    occupancy = registry.gauge(
        "dftl_cmt_occupancy", "live CMT entries", unit="entries"
    )
    capacity = registry.gauge(
        "dftl_cmt_capacity", "configured CMT capacity", unit="entries"
    )

    def collect() -> None:
        stats = ftl.dftl_stats
        hits.set(stats.cmt_hits)
        misses.set(stats.cmt_misses)
        evictions.labels(dirty="true").set(stats.cmt_evictions_dirty)
        evictions.labels(dirty="false").set(stats.cmt_evictions_clean)
        trans.labels(op="read").set(stats.trans_reads)
        trans.labels(op="write").set(stats.trans_programs)
        trans.labels(op="gc_read").set(stats.trans_gc_reads)
        trans.labels(op="gc_program").set(stats.trans_gc_programs)
        trans.labels(op="gc_erase").set(stats.trans_gc_erases)
        occupancy.set(ftl.cmt_occupancy())
        capacity.set(ftl.cmt_capacity)

    registry.add_collector(collect)
