"""YCSB-A database workloads: Rocks (RocksDB) and Mongo (MongoDB).

The paper runs YCSB workload A -- the update-heavy 50/50 read/update mix
-- against RocksDB and MongoDB and replays the resulting block-level I/O.
The two engines translate the same key-value operations into very
different I/O:

- **RocksDB** (LSM-tree): point reads hit SSTables (Zipf over the data
  set); updates append to the WAL and memtable, and periodically flush
  and compact -- long sequential write bursts of tens of pages.
- **MongoDB** (WiredTiger B-tree): point reads are similar, but updates
  are leaf-page writes -- small random overwrites -- plus journal
  appends.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import READ, WRITE, IORequest, Trace
from repro.workloads.synthetic import ZipfSampler


def rocks_trace(logical_pages: int, n_requests: int, seed: int = 1) -> Trace:
    """RocksDB under YCSB-A: Zipf reads, WAL appends, compaction bursts."""
    rng = np.random.default_rng(seed)
    trace = Trace("Rocks", logical_pages)
    wal_region = max(8, int(logical_pages * 0.03))
    sst_region = logical_pages - wal_region
    sampler = ZipfSampler(max(1, sst_region - 4), theta=0.99, rng=rng)
    wal_cursor = 0
    compaction_cursor = 0
    updates_since_flush = 0
    produced = 0
    while produced < n_requests:
        if rng.random() < 0.5:
            trace.append(IORequest(READ, int(sampler.sample(rng, 1)[0]), 1))
            produced += 1
        else:
            # WAL append for the update
            trace.append(IORequest(WRITE, sst_region + wal_cursor, 1))
            wal_cursor = (wal_cursor + 1) % (wal_region - 1)
            produced += 1
            updates_since_flush += 1
            # memtable flush + compaction: a burst of sequential writes
            if updates_since_flush >= 48 and produced < n_requests:
                updates_since_flush = 0
                burst_pages = int(rng.integers(16, 65))
                span = max(1, sst_region - burst_pages - 1)
                start = compaction_cursor % span
                compaction_cursor += burst_pages
                chunk = 8
                for off in range(0, burst_pages, chunk):
                    pages = min(chunk, burst_pages - off)
                    trace.append(IORequest(WRITE, start + off, pages))
                    produced += 1
                    if produced >= n_requests:
                        break
    return trace


def mongo_trace(logical_pages: int, n_requests: int, seed: int = 1) -> Trace:
    """MongoDB under YCSB-A: Zipf reads, leaf-page updates, journal."""
    rng = np.random.default_rng(seed)
    trace = Trace("Mongo", logical_pages)
    journal_region = max(8, int(logical_pages * 0.02))
    data_region = logical_pages - journal_region
    sampler = ZipfSampler(max(1, data_region - 4), theta=0.99, rng=rng)
    journal_cursor = 0
    produced = 0
    while produced < n_requests:
        if rng.random() < 0.5:
            trace.append(IORequest(READ, int(sampler.sample(rng, 1)[0]), 1))
            produced += 1
        else:
            # leaf-page overwrite (1-2 pages) ...
            lpn = int(sampler.sample(rng, 1)[0])
            trace.append(IORequest(WRITE, lpn, int(rng.integers(1, 3))))
            produced += 1
            # ... plus a journal append every few updates
            if produced < n_requests and rng.random() < 0.5:
                trace.append(
                    IORequest(WRITE, data_region + journal_cursor, 1)
                )
                journal_cursor = (journal_cursor + 1) % (journal_region - 1)
                produced += 1
    return trace
