"""Experiment-level shard specs for the parallel runner.

:class:`RunSpec` names one simulation run (a benchmark case, one cell of
a parameter sweep, one fault campaign) declaratively, so it pickles into
a worker process; :func:`execute_run_spec` is the module-level worker
the runner invokes.  :func:`specs_to_shards` turns RunSpecs into
:class:`~repro.parallel.runner.ShardSpec` items, resolving each spec's
seed through the fixed derivation rule when the spec does not pin one:

    spec.seed if spec.seed is not None else derive_seed(base_seed, spec.name)

Seeds therefore depend only on (base_seed, name) -- never on worker
count or shard-to-worker assignment -- which is what makes sweep results
bit-for-bit reproducible under any ``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.parallel.runner import ShardSpec
from repro.parallel.seeds import derive_seed
from repro.specs import SimulationSpec
from repro.ssd.config import SSDConfig


@dataclass(frozen=True)
class RunSpec:
    """One named simulation run, fully described by values that pickle.

    ``seed=None`` (the default) means "derive from the base seed and my
    name"; pin an explicit seed to opt out (the benchmark harness does,
    to stay comparable with its committed baselines).

    Two forms: the flat legacy fields (``config``/``workload``/...), or
    a full :class:`~repro.specs.SimulationSpec` in ``spec`` -- then the
    flat fields are ignored and the run is the spec with its seed
    replaced by this shard's resolved seed.  The spec form is how NCQ
    hosts, trace files, workload params, and tenant scenarios enter
    sweeps.
    """

    name: str
    config: Optional[SSDConfig] = None
    workload: str = ""
    ftl: str = "cube"
    queue_depth: int = 32
    warmup_requests: int = 0
    prefill: float = 0.9
    n_requests: int = 8000
    seed: Optional[int] = None
    telemetry: bool = False
    ftl_kwargs: Dict[str, Any] = field(default_factory=dict)
    spec: Optional[SimulationSpec] = None
    #: base directory for a per-run artifact (see repro.obs.artifact);
    #: None disables -- sweeps set it to give every cell its own artifact
    artifact_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.spec is None:
            if self.config is None or not self.workload:
                raise ValueError(
                    f"RunSpec {self.name!r} needs either a SimulationSpec "
                    "(spec=) or config + workload"
                )


def execute_run_spec(spec: RunSpec, seed: int):
    """Worker entry point: run one spec, return its SimulationResult."""
    from dataclasses import replace as dc_replace

    from repro.api import run_simulation, run_spec

    if spec.spec is not None:
        resolved = dc_replace(spec.spec, seed=seed)
        if spec.telemetry and not resolved.options.telemetry:
            resolved = resolved.with_options(telemetry=True)
        if spec.artifact_dir is not None:
            resolved = resolved.with_options(artifact_dir=spec.artifact_dir)
        return run_spec(resolved)
    return run_simulation(
        spec.config,
        spec.workload,
        ftl=spec.ftl,
        queue_depth=spec.queue_depth,
        warmup_requests=spec.warmup_requests,
        prefill=spec.prefill,
        n_requests=spec.n_requests,
        seed=seed,
        telemetry=spec.telemetry,
        artifact_dir=spec.artifact_dir,
        **spec.ftl_kwargs,
    )


def resolve_seed(spec: RunSpec, base_seed: int) -> int:
    """The seed a spec runs with (pinned, or derived from its name)."""
    return spec.seed if spec.seed is not None else derive_seed(base_seed, spec.name)


def specs_to_shards(
    specs: Sequence[RunSpec], base_seed: int
) -> "list[ShardSpec]":
    names = [spec.name for spec in specs]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate RunSpec names {duplicates}: the name is the shard's "
            "seed-derivation identity, so it must be unique per run"
        )
    return [
        ShardSpec(
            name=spec.name,
            fn=execute_run_spec,
            kwargs={"spec": spec, "seed": resolve_seed(spec, base_seed)},
        )
        for spec in specs
    ]
