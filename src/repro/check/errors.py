"""Structured invariant-violation reporting.

An :class:`InvariantViolation` is raised by the runtime checker
(:mod:`repro.check.invariants`) the moment a simulator-wide invariant
breaks.  The exception carries everything needed to act on the report
without re-running under a debugger: which invariant broke, the
offending LPN / PPN / chip / block, the simulated timestamp, the run
context (seed, FTL, workload -- enough to replay the violating run),
and, when request tracing is active, the most recent trace spans
leading up to the violation.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulator was violated.

    Subclasses :class:`AssertionError` so existing ``pytest.raises``
    patterns and ad-hoc assertion handling keep working.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        lpn: Optional[int] = None,
        ppn: Optional[int] = None,
        chip: Optional[int] = None,
        block: Optional[int] = None,
        time_us: Optional[float] = None,
        context: Optional[Dict[str, object]] = None,
        recent_spans: Optional[List[dict]] = None,
        details: Optional[Dict[str, object]] = None,
    ) -> None:
        self.invariant = invariant
        self.message = message
        self.lpn = lpn
        self.ppn = ppn
        self.chip = chip
        self.block = block
        self.time_us = time_us
        self.context = dict(context or {})
        self.recent_spans = list(recent_spans or [])
        self.details = dict(details or {})
        super().__init__(self._compose())

    def _compose(self) -> str:
        parts = [f"[{self.invariant}] {self.message}"]
        located = []
        for name in ("lpn", "ppn", "chip", "block"):
            value = getattr(self, name)
            if value is not None:
                located.append(f"{name}={value}")
        if located:
            parts.append("at " + " ".join(located))
        if self.time_us is not None:
            parts.append(f"t={self.time_us:.3f}us")
        if self.context:
            rendered = " ".join(
                f"{key}={self.context[key]}" for key in sorted(self.context)
            )
            parts.append(f"run({rendered})")
        if self.details:
            rendered = " ".join(
                f"{key}={self.details[key]}" for key in sorted(self.details)
            )
            parts.append(f"details({rendered})")
        if self.recent_spans:
            lines = [f"last {len(self.recent_spans)} trace spans:"]
            for span in self.recent_spans:
                lines.append(f"  {span}")
            parts.append("\n".join(lines))
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-safe rendering (telemetry / report embedding)."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "lpn": self.lpn,
            "ppn": self.ppn,
            "chip": self.chip,
            "block": self.block,
            "time_us": self.time_us,
            "context": dict(self.context),
            "details": dict(self.details),
        }
