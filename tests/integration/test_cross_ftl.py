"""Cross-FTL consistency: different FTLs, same logical behaviour.

Whatever latency tricks an FTL plays, the logical storage contract is
identical: after the same trace, every FTL must expose the same
logical-to-data view.  These tests replay identical traces against all
FTLs and compare the mapped state.
"""

import pytest

from repro.nand.reliability import AgingState
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads import make_workload
from repro.workloads.base import IORequest, Trace
from repro.workloads.synthetic import uniform_random_trace

ALL_FTLS = ["page", "vert", "cube", "cube-", "oracle"]


def _final_data_view(sim):
    """LPN -> stored tag for every mapped page (reads the flash)."""
    view = {}
    mapper = sim.ftl.mapper
    geometry = sim.config.geometry
    for lpn in range(sim.config.logical_pages):
        ppn = mapper.lookup(lpn)
        if ppn == -1:
            continue
        chip_id, address = geometry.ppn_to_address(ppn)
        result = sim.controller.chip(chip_id).read_page(
            address.block, address.layer, address.wl, address.page
        )
        view[lpn] = result.data
    return view


class TestLogicalEquivalence:
    @pytest.mark.parametrize("workload", ["Mail", "Rocks"])
    def test_all_ftls_store_identical_logical_state(self, workload):
        views = {}
        for ftl in ALL_FTLS:
            config = SSDConfig.small(store_tags=True, env_shift_prob=0.0)
            sim = SSDSimulation(config, ftl=ftl)
            trace = make_workload(workload, config.logical_pages, 400, seed=13)
            sim.run(trace, queue_depth=8)
            sim.ftl.mapper.check_invariants()
            views[ftl] = _final_data_view(sim)
        reference = views["page"]
        for ftl, view in views.items():
            assert view == reference, f"{ftl} diverged from pageFTL"

    def test_every_stored_tag_is_its_own_lpn(self):
        """The data tag convention: each flash page stores its LPN."""
        config = SSDConfig.small(store_tags=True, env_shift_prob=0.0)
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 400, read_fraction=0.3, seed=17
        )
        sim.run(trace, queue_depth=8)
        for lpn, tag in _final_data_view(sim).items():
            assert tag == lpn

    def test_equivalence_survives_gc(self):
        config = SSDConfig.small(
            store_tags=True,
            env_shift_prob=0.0,
            logical_fraction=0.6,
            gc_trigger_blocks=3,
        )
        views = {}
        erased = {}
        for ftl in ("page", "cube"):
            sim = SSDSimulation(config, ftl=ftl)
            sim.prefill(1.0)
            trace = uniform_random_trace(
                config.logical_pages, 2200, read_fraction=0.1, seed=19
            )
            stats = sim.run(trace, queue_depth=8)
            views[ftl] = _final_data_view(sim)
            erased[ftl] = stats.counters.erases
        assert erased["page"] > 0 and erased["cube"] > 0
        assert views["page"] == views["cube"]

    def test_equivalence_survives_safety_reprograms(self):
        config = SSDConfig.small(store_tags=True, env_shift_prob=0.05)
        sim = SSDSimulation(config, ftl="cube")
        trace = uniform_random_trace(
            config.logical_pages, 600, read_fraction=0.2, seed=23
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.counters.reprograms > 0
        for lpn, tag in _final_data_view(sim).items():
            assert tag == lpn


class TestAgedEquivalence:
    def test_aging_changes_latency_not_data(self):
        views = {}
        for retention in (0.0, 12.0):
            config = SSDConfig.small(
                store_tags=True, env_shift_prob=0.0
            ).with_aging(AgingState(2000, retention))
            sim = SSDSimulation(config, ftl="cube")
            trace = Trace("w", config.logical_pages, [
                IORequest("W", lpn, 1) for lpn in range(120)
            ])
            sim.run(trace, queue_depth=4)
            views[retention] = _final_data_view(sim)
        assert views[0.0] == views[12.0]
