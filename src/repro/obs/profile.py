"""Opt-in self-profiling: where does simulator *wall-clock* time go?

The ROADMAP's north star is a simulator that runs as fast as the
hardware allows, which requires knowing whether host time is spent in
the FTL logic, the NAND device model, event-queue maintenance, or the
tracing layer.  :class:`WallClockProfiler` is a tiny exclusive-time
section profiler: sections are pushed/popped around the interesting
code paths and elapsed :func:`time.perf_counter` time is always charged
to the *innermost* open section, so nesting subtracts automatically
(a NAND-model section opened inside an FTL dispatch steals its own time
from the dispatch bucket).

Attribution map (see :func:`attach_profiler`):

==============  ========================================================
section         host time spent in
==============  ========================================================
``setup``       building the SSD, prefill, workload generation
``event_queue`` heap maintenance inside the engine loop
``dispatch``    event callbacks minus nested sections -- FTL logic,
                request bookkeeping, statistics
``nand``        the NAND chip model (program / read / erase)
``tracing``     span construction and sink emission
``other``       anything outside the engine loop (result packing, ...)
==============  ========================================================

Profiling is pure observation: it wraps host-side calls with timers and
never touches simulated time, so a profiled run's *simulated* results
are identical to an unprofiled run's (asserted by the test suite).
Wall-clock numbers themselves are, of course, host-dependent.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List


class WallClockProfiler:
    """Exclusive-time wall-clock attribution over named sections."""

    __slots__ = ("seconds", "_stack", "_mark", "_t0")

    def __init__(self) -> None:
        #: section name -> exclusive seconds
        self.seconds: Dict[str, float] = {}
        self._stack: List[str] = []
        self._mark = perf_counter()
        self._t0 = self._mark

    def push(self, name: str) -> None:
        """Open a section; time since the last push/pop is charged to
        the previously innermost section (or ``other`` at top level)."""
        now = perf_counter()
        self._charge(now)
        self._stack.append(name)
        self._mark = now

    def pop(self) -> None:
        """Close the innermost section, charging it the elapsed time."""
        now = perf_counter()
        self._charge(now)
        self._stack.pop()
        self._mark = now

    def _charge(self, now: float) -> None:
        owner = self._stack[-1] if self._stack else "other"
        self.seconds[owner] = self.seconds.get(owner, 0.0) + (now - self._mark)

    @contextmanager
    def section(self, name: str):
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # ------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return perf_counter() - self._t0

    def to_dict(self) -> dict:
        """JSON-safe summary: per-section exclusive seconds + total."""
        self._charge(perf_counter())
        self._mark = perf_counter()
        sections = {name: self.seconds[name] for name in sorted(self.seconds)}
        return {"total_s": self.total_seconds, "sections_s": sections}

    def report(self) -> str:
        """Human-readable per-subsystem wall-clock table."""
        return profile_report(self.to_dict())


def profile_report(summary: dict) -> str:
    """Render a :meth:`WallClockProfiler.to_dict` summary as a table."""
    from repro.analysis.tables import format_table

    total = sum(summary["sections_s"].values()) or 1.0
    rows = [
        [name, f"{seconds:.3f}", f"{100.0 * seconds / total:.1f} %"]
        for name, seconds in sorted(
            summary["sections_s"].items(), key=lambda kv: -kv[1]
        )
    ]
    rows.append(["total", f"{summary['total_s']:.3f}", "100.0 %"])
    return format_table(["subsystem", "wall s", "share"], rows)


def _wrap_timed(profiler: WallClockProfiler, name: str, fn):
    def timed(*args, **kwargs):
        profiler.push(name)
        try:
            return fn(*args, **kwargs)
        finally:
            profiler.pop()

    return timed


def attach_profiler(profiler: WallClockProfiler, controller, tracer=None) -> None:
    """Instrument a built simulation for wall-clock attribution.

    Chip-model entry points are wrapped in a ``nand`` section and the
    trace sink's emit in ``tracing``; the engine loop itself attributes
    ``event_queue`` vs. ``dispatch`` when given the profiler (see
    :meth:`repro.sim.engine.Engine.run`).  Wrapping replaces *bound
    attributes on the instances*, so the classes stay untouched and an
    unprofiled simulation pays nothing.
    """
    for chip in controller.chips:
        chip.program_wl = _wrap_timed(profiler, "nand", chip.program_wl)
        chip.read_page = _wrap_timed(profiler, "nand", chip.read_page)
        chip.erase_block = _wrap_timed(profiler, "nand", chip.erase_block)
    if tracer is not None:
        tracer.sink.emit = _wrap_timed(profiler, "tracing", tracer.sink.emit)
