"""Telemetry-snapshot merge semantics."""

import pytest

from repro.obs.registry import TelemetryRegistry
from repro.parallel import merge_snapshots


def _registry_snapshot(counter_value, gauge_value, observations):
    registry = TelemetryRegistry()
    registry.counter("ops", "operations").inc(counter_value)
    registry.gauge("busy_us", "busy time", unit="us").set(gauge_value)
    labelled = registry.counter("per_die", "per-die ops", labelnames=("die",))
    labelled.labels(die=0).inc(counter_value)
    hist = registry.histogram("depth", "queue depth", buckets=(1, 4, 16))
    for value in observations:
        hist.observe(value)
    return registry.snapshot()


class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        merged = merge_snapshots(
            [_registry_snapshot(3, 10.0, []), _registry_snapshot(4, 2.5, [])]
        )
        assert merged["ops"]["series"][0]["value"] == 7.0
        assert merged["busy_us"]["series"][0]["value"] == 12.5

    def test_labelled_series_merge_by_label_set(self):
        merged = merge_snapshots(
            [_registry_snapshot(1, 0, []), _registry_snapshot(2, 0, [])]
        )
        (row,) = merged["per_die"]["series"]
        assert row["labels"] == {"die": "0"}
        assert row["value"] == 3.0

    def test_histograms_sum_exactly(self):
        merged = merge_snapshots(
            [
                _registry_snapshot(0, 0, [1, 2, 20]),
                _registry_snapshot(0, 0, [3, 17]),
            ]
        )
        (row,) = merged["depth"]["series"]
        assert row["count"] == 5
        assert row["sum"] == 43.0
        assert row["buckets"] == {"1": 1, "4": 2, "16": 0, "+inf": 2}

    def test_merge_is_order_insensitive(self):
        a = _registry_snapshot(3, 1.0, [1, 9])
        b = _registry_snapshot(5, 2.0, [2])
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    def test_none_and_missing_instruments_are_fine(self):
        registry = TelemetryRegistry()
        registry.counter("only_here", "partial").inc(2)
        merged = merge_snapshots(
            [None, _registry_snapshot(1, 1.0, []), registry.snapshot()]
        )
        assert merged["only_here"]["series"][0]["value"] == 2.0
        assert merged["ops"]["series"][0]["value"] == 1.0

    def test_merged_shape_matches_registry_snapshot_shape(self):
        snapshot = _registry_snapshot(1, 2.0, [3])
        merged = merge_snapshots([snapshot])
        assert merged == snapshot

    def test_kind_conflict_raises(self):
        a = TelemetryRegistry()
        a.counter("x", "as counter").inc()
        b = TelemetryRegistry()
        b.gauge("x", "as gauge").set(1)
        with pytest.raises(ValueError, match="counter.*gauge"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_bucket_mismatch_raises(self):
        a = TelemetryRegistry()
        a.histogram("h", "x", buckets=(1, 2)).observe(1)
        b = TelemetryRegistry()
        b.histogram("h", "x", buckets=(1, 3)).observe(1)
        with pytest.raises(ValueError, match="bucket"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_empty_input(self):
        assert merge_snapshots([]) == {}
        assert merge_snapshots([None, None]) == {}
