"""Crash-isolated process-pool shard runner.

The unit of work is a :class:`ShardSpec`: a named, picklable call.  The
runner executes up to ``jobs`` shards concurrently, each in its own
``multiprocessing.Process``, and returns one :class:`ShardOutcome` per
spec **in input order** -- never in completion order.  Combined with the
rule that a shard's seed derives only from its name (see
:mod:`repro.parallel.seeds`), this makes the merged output of a run a
pure function of the spec list: bit-for-bit identical for any worker
count and any scheduling of the workers.

Isolation is per-shard, not per-pool.  ``concurrent.futures`` pools
treat an abnormally dying worker as fatal for the whole pool
(``BrokenProcessPool``); here a shard whose process segfaults, is
OOM-killed, or raises simply yields an ``ok=False`` outcome carrying the
error, and every other shard still completes.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class ShardSpec:
    """One unit of parallel work.

    ``fn`` must be picklable (a module-level function) and is invoked as
    ``fn(**kwargs)`` in the worker process; whatever it returns must
    pickle back.  ``name`` identifies the shard in reports and is the
    sole input (besides the base seed) to its seed derivation.
    """

    name: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ShardOutcome:
    """Result slot for one shard, ok or not.

    ``error`` is a human-readable failure description -- the worker's
    formatted traceback when the shard raised, or an exit-code note when
    the process died without reporting (segfault, OOM kill).

    ``retried`` records provenance: the outcome came from a relaunch
    after an earlier attempt's worker hard-died (see the ``retries``
    parameter of :func:`run_shards`).  ``cached`` marks an outcome
    loaded from a sweep checkpoint directory instead of being run (see
    :func:`repro.persist.run_shards_resumable`).
    """

    name: str
    ok: bool
    result: Any = None
    error: Optional[str] = None
    retried: bool = False
    cached: bool = False


class ShardsInterrupted(KeyboardInterrupt):
    """The user interrupted a shard run (SIGINT / Ctrl-C).

    Carries the shards that *did* complete (``outcomes``, input order)
    so callers can persist partial results -- the CLI sweep writes them
    with ``"incomplete": true`` -- before exiting with status 130.
    Worker processes still running at the interrupt are terminated.
    """

    def __init__(self, outcomes: List[ShardOutcome]) -> None:
        super().__init__(f"interrupted with {len(outcomes)} shards complete")
        self.outcomes = outcomes


def _shard_main(spec: ShardSpec, conn, log_level: Optional[str] = None) -> None:
    """Worker entry point: run the shard, report through the pipe.

    The pipe carries zero or more ``("progress", payload)`` heartbeats
    (emitted through the process-wide progress sink, see
    :mod:`repro.parallel.progress`) followed by exactly one terminal
    ``("ok", result)`` / ``("error", traceback)`` message.

    ``log_level`` re-creates the parent's ``--log-level`` configuration
    in this fresh interpreter (spawned workers otherwise default to
    warnings-only and drop the parent's requested diagnostics).
    """
    if log_level is not None:
        from repro.obs.log import configure_logging

        configure_logging(log_level)
    from repro.parallel.progress import set_progress_sink

    set_progress_sink(lambda payload: conn.send(("progress", payload)))
    try:
        result = spec.fn(**spec.kwargs)
        conn.send(("ok", result))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _run_inline(
    specs: Sequence[ShardSpec], on_progress, heartbeat=None
) -> List[ShardOutcome]:
    from repro.parallel.progress import set_progress_sink

    outcomes = []
    for spec in specs:
        if heartbeat is not None:
            set_progress_sink(
                lambda payload, name=spec.name: heartbeat(name, payload)
            )
        try:
            outcomes.append(ShardOutcome(spec.name, True, spec.fn(**spec.kwargs)))
        except KeyboardInterrupt:
            raise ShardsInterrupted(outcomes)
        except Exception:
            outcomes.append(
                ShardOutcome(spec.name, False, error=traceback.format_exc())
            )
        finally:
            if heartbeat is not None:
                set_progress_sink(None)
        if on_progress is not None:
            on_progress(outcomes[-1])
    return outcomes


def run_shards(
    specs: Sequence[ShardSpec],
    jobs: int = 1,
    on_progress: Optional[Callable[[ShardOutcome], None]] = None,
    retries: int = 0,
    registry=None,
    heartbeat: Optional[Callable[[str, dict], None]] = None,
) -> List[ShardOutcome]:
    """Run shards with up to ``jobs`` worker processes.

    Returns outcomes aligned with ``specs`` (input order).  With
    ``jobs <= 1`` the shards run inline in this process -- same outcome
    semantics, no subprocess overhead -- which is also the reference
    behaviour parallel runs must reproduce bit-for-bit.

    ``on_progress`` (if given) is called with each :class:`ShardOutcome`
    as it lands, in *completion* order; it runs in this process and must
    not raise.

    ``retries`` relaunches a shard whose worker *hard-died* (exited
    without reporting: segfault, OOM kill) up to that many times, with
    the identical spec -- and therefore the identical derived seed, so a
    retried shard that succeeds is bit-identical to one that succeeded
    first try.  Shards that *raised* are not retried (a deterministic
    simulation raises again).  Each relaunch bumps the
    ``shard_retries_total`` counter on ``registry`` (a
    :class:`~repro.obs.registry.TelemetryRegistry`, optional) and marks
    the shard's eventual outcome ``retried=True``.

    ``heartbeat`` (if given) receives ``(shard_name, payload)`` for each
    live-progress message a running shard emits (see
    :mod:`repro.parallel.progress`); like ``on_progress`` it runs in
    this process and must not raise.  Workers also inherit this
    process's ``--log-level`` configuration (see
    :func:`repro.obs.log.configured_level`), so shard diagnostics are
    not silently dropped.

    A SIGINT (Ctrl-C) terminates the remaining workers and raises
    :class:`ShardsInterrupted` carrying the completed outcomes.
    """
    from repro.obs.log import configured_level

    retry_counter = None
    if registry is not None:
        retry_counter = registry.counter(
            "shard_retries_total",
            "shards relaunched after a worker died without reporting",
        )
    if jobs <= 1 or len(specs) <= 1:
        return _run_inline(specs, on_progress, heartbeat=heartbeat)
    log_level = configured_level()

    # spawn (not fork): workers start from a clean interpreter, so shard
    # results cannot depend on state the parent accumulated -- the same
    # property that keeps reruns and different worker counts identical
    ctx = mp.get_context("spawn")
    outcomes: List[Optional[ShardOutcome]] = [None] * len(specs)
    pending = list(enumerate(specs))  # input order; workers pull from front
    active: Dict[Any, tuple] = {}  # recv conn -> (index, spec, process)
    attempts: Dict[int, int] = {}  # index -> relaunches so far

    def _launch() -> None:
        while pending and len(active) < jobs:
            index, spec = pending.pop(0)
            recv, send = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_shard_main, args=(spec, send, log_level), daemon=True
            )
            process.start()
            # the child holds its own handle; keeping ours open would
            # make recv block forever after a worker dies mid-shard
            send.close()
            active[recv] = (index, spec, process)

    try:
        _launch()
        while active:
            for conn in _wait_connections(list(active)):
                index, spec, process = active[conn]
                try:
                    status, payload = conn.recv()
                except EOFError:
                    status, payload = None, None
                if status == "progress":
                    # live heartbeat: the shard is still running, keep
                    # its connection registered and read on
                    if heartbeat is not None:
                        heartbeat(spec.name, payload)
                    continue
                del active[conn]
                conn.close()
                process.join()
                if status == "ok":
                    outcome = ShardOutcome(spec.name, True, payload)
                elif status == "error":
                    outcome = ShardOutcome(spec.name, False, error=payload)
                elif attempts.get(index, 0) < retries:
                    # hard death: relaunch the identical spec (same
                    # derived seed) at the front of the queue
                    attempts[index] = attempts.get(index, 0) + 1
                    if retry_counter is not None:
                        retry_counter.inc()
                    pending.insert(0, (index, spec))
                    continue
                else:
                    outcome = ShardOutcome(
                        spec.name,
                        False,
                        error=(
                            f"worker died without reporting "
                            f"(exit code {process.exitcode})"
                        ),
                    )
                outcome.retried = attempts.get(index, 0) > 0
                outcomes[index] = outcome
                if on_progress is not None:
                    on_progress(outcome)
            _launch()
    except KeyboardInterrupt:
        for _conn, (_index, _spec, process) in active.items():
            process.terminate()
        for _conn, (_index, _spec, process) in active.items():
            process.join()
        raise ShardsInterrupted(
            [outcome for outcome in outcomes if outcome is not None]
        )
    return outcomes  # type: ignore[return-value]
