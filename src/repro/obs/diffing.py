"""Cross-run metric diffing with tolerance verdicts.

The primitives here started life in ``tools/bench_compare.py`` (which
now imports them, keeping its output byte-identical): :func:`pct`
delta formatting, :class:`SchemaDriftError`, the named-path
:func:`metric` fetch, and the per-case gating of :func:`compare_case`.
On top of them, :func:`compare_artifacts` diffs two *run artifact*
directories (see :mod:`repro.obs.artifact`) metric-by-metric, giving
every row a verdict:

``same``
    exactly equal (the expected outcome for an identical spec+seed --
    the simulator is deterministic).
``ok`` / ``better`` / ``REGRESSION``
    within tolerance / beyond tolerance in the good direction / beyond
    tolerance in the bad direction, for gated metrics (IOPS up is good,
    latency percentiles down is good).
``info``
    reported but never gated (counters, durations).
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

__all__ = [
    "SchemaDriftError",
    "pct",
    "metric",
    "compare_case",
    "compare_artifacts",
    "format_artifact_diff",
]


def pct(new: float, old: float) -> str:
    """Signed relative delta, or ``n/a`` when undefined."""
    if new is None or old is None:
        return "n/a"
    if old == 0:
        return "n/a" if new == 0 else "+inf"
    return f"{100.0 * (new - old) / old:+.1f} %"


class SchemaDriftError(Exception):
    """A snapshot lacks a key this comparator gates on.

    Snapshot generations can drift (fields added, renamed, dropped); the
    comparator must *name* the missing key and the snapshot it came
    from, not die with a KeyError traceback -- a crashed CI diff is
    indistinguishable from a broken comparator."""


def metric(case: dict, source: str, *path: str):
    """Fetch a (possibly nested) metric, naming any missing key."""
    value = case
    walked = []
    for key in path:
        walked.append(key)
        if not isinstance(value, dict) or key not in value:
            name = case.get("name", "?") if isinstance(case, dict) else "?"
            raise SchemaDriftError(
                f"case {name!r} in {source} is missing metric "
                f"{'.'.join(walked)!r} (bench schema drift -- regenerate "
                f"the baseline or pin matching bench generations)"
            )
        value = value[key]
    return value


def compare_case(
    old: dict,
    new: dict,
    tolerance: float,
    wall_tolerance: Optional[float],
    old_source: str = "<old>",
    new_source: str = "<new>",
) -> List[str]:
    """Regression messages for one matched bench case (empty when clean).

    Raises :class:`SchemaDriftError` when a gated metric is absent from
    either snapshot."""
    problems = []
    old_iops = metric(old, old_source, "iops")
    new_iops = metric(new, new_source, "iops")
    if new_iops < old_iops * (1.0 - tolerance):
        problems.append(
            f"{new['name']}: IOPS regressed {old_iops:.0f} -> "
            f"{new_iops:.0f} ({pct(new_iops, old_iops)})"
        )
    for block in ("read_latency", "write_latency"):
        old_p99 = metric(old, old_source, block, "p99_us")
        new_p99 = metric(new, new_source, block, "p99_us")
        if new_p99 > old_p99 * (1.0 + tolerance):
            problems.append(
                f"{new['name']}: {block} p99 regressed {old_p99:.1f} -> "
                f"{new_p99:.1f} us ({pct(new_p99, old_p99)})"
            )
    if wall_tolerance is not None:
        old_wall = metric(old, old_source, "wall_clock_s")
        new_wall = metric(new, new_source, "wall_clock_s")
        if new_wall > old_wall * (1.0 + wall_tolerance):
            problems.append(
                f"{new['name']}: wall-clock regressed {old_wall:.2f} -> "
                f"{new_wall:.2f} s ({pct(new_wall, old_wall)})"
            )
    return problems


# -- run-artifact diffing ----------------------------------------------

#: gated scalar metrics: (dotted path, good direction)
_GATED = (
    ("iops", "higher"),
    ("read_latency.mean_us", "lower"),
    ("read_latency.p50_us", "lower"),
    ("read_latency.p90_us", "lower"),
    ("read_latency.p99_us", "lower"),
    ("read_latency.p999_us", "lower"),
    ("read_latency.max_us", "lower"),
    ("write_latency.mean_us", "lower"),
    ("write_latency.p50_us", "lower"),
    ("write_latency.p90_us", "lower"),
    ("write_latency.p99_us", "lower"),
    ("write_latency.p999_us", "lower"),
    ("write_latency.max_us", "lower"),
)

#: informational scalar metrics (never gated)
_INFO = (
    "completed_requests",
    "duration_us",
    "read_latency.count",
    "write_latency.count",
)


def _load_json(run_dir: str, name: str, source: str):
    path = os.path.join(run_dir, name)
    if not os.path.isfile(path):
        raise SchemaDriftError(f"{source} has no {name} (not a run artifact?)")
    with open(path) as handle:
        return json.load(handle)


def _lookup(document: dict, dotted: str):
    value = document
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def _verdict(a, b, direction: str, tolerance: float) -> str:
    if a is None or b is None:
        return "info"
    if b == a:
        return "same"
    if a == 0:
        return "ok"
    rel = (b - a) / a
    if direction == "higher":
        rel = -rel
    if rel > tolerance:
        return "REGRESSION"
    if rel < -tolerance:
        return "better"
    return "ok"


def compare_artifacts(dir_a: str, dir_b: str, tolerance: float = 0.10) -> dict:
    """Diff two run-artifact directories metric-by-metric.

    Returns ``{"a", "b", "same_run", "rows", "problems"}`` where each
    row is ``{"metric", "a", "b", "delta", "verdict"}`` and ``problems``
    lists the REGRESSION rows.  Raises :class:`SchemaDriftError` when
    either directory is not a readable run artifact.
    """
    manifest_a = _load_json(dir_a, "manifest.json", dir_a)
    manifest_b = _load_json(dir_b, "manifest.json", dir_b)
    result_a = _load_json(dir_a, "result.json", dir_a)
    result_b = _load_json(dir_b, "result.json", dir_b)

    rows = []
    problems = []
    for dotted, direction in _GATED:
        value_a = _lookup(result_a, dotted)
        value_b = _lookup(result_b, dotted)
        if value_a is None and value_b is None:
            continue
        verdict = _verdict(value_a, value_b, direction, tolerance)
        row = {
            "metric": dotted,
            "a": value_a,
            "b": value_b,
            "delta": pct(value_b, value_a),
            "verdict": verdict,
        }
        rows.append(row)
        if verdict == "REGRESSION":
            problems.append(row)
    for dotted in _INFO:
        value_a = _lookup(result_a, dotted)
        value_b = _lookup(result_b, dotted)
        if value_a is None and value_b is None:
            continue
        rows.append(
            {
                "metric": dotted,
                "a": value_a,
                "b": value_b,
                "delta": pct(value_b, value_a),
                "verdict": "same" if value_a == value_b else "info",
            }
        )
    counters_a = result_a.get("counters") or {}
    counters_b = result_b.get("counters") or {}
    for name in sorted(set(counters_a) | set(counters_b)):
        value_a = counters_a.get(name)
        value_b = counters_b.get(name)
        rows.append(
            {
                "metric": f"counters.{name}",
                "a": value_a,
                "b": value_b,
                "delta": pct(value_b, value_a),
                "verdict": "same" if value_a == value_b else "info",
            }
        )
    return {
        "a": {
            "dir": dir_a,
            "run_id": manifest_a.get("run_id"),
            "fingerprint": manifest_a.get("fingerprint"),
        },
        "b": {
            "dir": dir_b,
            "run_id": manifest_b.get("run_id"),
            "fingerprint": manifest_b.get("fingerprint"),
        },
        "same_run": manifest_a.get("fingerprint") == manifest_b.get("fingerprint"),
        "tolerance": tolerance,
        "rows": rows,
        "problems": problems,
    }


def format_artifact_diff(report: dict) -> List[str]:
    """Deterministic text rendering of a :func:`compare_artifacts` report."""

    def cell(value) -> str:
        if value is None:
            return "n/a"
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    lines = [
        f"a: {report['a']['run_id']}  ({report['a']['dir']})",
        f"b: {report['b']['run_id']}  ({report['b']['dir']})",
    ]
    if report["same_run"]:
        lines.append("note: identical spec fingerprint (same spec + seed)")
    lines.append("")
    width = max(len(row["metric"]) for row in report["rows"]) if report["rows"] else 6
    header = f"{'metric':<{width}}  {'a':>12}  {'b':>12}  {'delta':>9}  verdict"
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["rows"]:
        lines.append(
            f"{row['metric']:<{width}}  {cell(row['a']):>12}  "
            f"{cell(row['b']):>12}  {row['delta']:>9}  {row['verdict']}"
        )
    lines.append("")
    if report["problems"]:
        for row in report["problems"]:
            lines.append(
                f"REGRESSION: {row['metric']} {cell(row['a'])} -> "
                f"{cell(row['b'])} ({row['delta']})"
            )
    else:
        lines.append(
            f"OK: no regressions beyond {report['tolerance']:.0%} tolerance"
        )
    return lines
