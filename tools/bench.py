#!/usr/bin/env python
"""Seeded continuous-benchmark runner.

Runs a fixed, seeded set of simulation cases and writes one
``BENCH_<n>.json`` snapshot (auto-incrementing at the repo root) with,
per case: simulated IOPS, latency percentiles, host wall-clock, peak
RSS, the FTL counters, and the device-telemetry registry snapshot.
Successive BENCH files are diffed with ``tools/bench_compare.py``; CI
runs the smoke size against the committed baseline::

    PYTHONPATH=src python tools/bench.py --smoke --out /tmp/BENCH_ci.json
    PYTHONPATH=src python tools/bench_compare.py BENCH_0.json /tmp/BENCH_ci.json

The *simulated* metrics (IOPS, percentiles, counters, telemetry) are
deterministic for a given seed and case list -- the simulator's
reliability model is hash-based, not host-dependent -- so they are
comparable across machines.  Wall-clock and RSS are host-dependent and
informational only.

``--jobs N`` shards the cases across N crash-isolated worker processes
(via :mod:`repro.parallel`); every case keeps the same explicit seed and
the snapshot lists cases in the same order, so the simulated metrics are
identical to a serial run.  ``--canonical`` additionally drops the
host-dependent fields (wall-clock, RSS, host info), making the snapshot
*byte-for-byte* identical for any ``--jobs`` value::

    PYTHONPATH=src python tools/bench.py --smoke --canonical --jobs 4 --out a.json
    PYTHONPATH=src python tools/bench.py --smoke --canonical --out b.json
    cmp a.json b.json   # identical
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys
import time
from typing import Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)  # for benchmarks.runner configs

BENCH_SCHEMA_VERSION = 1


def _cases():
    """(name, ftl, workload, aging) drawn from the benchmark configs.

    Every FTL of the paper comparison on the write-heavy OLTP mix, the
    read-heavier Proxy mix on cubeFTL, and one aged-device case (where
    read retries and the ORT actually matter) -- a small spread that
    still exercises every subsystem the registry instruments.
    """
    from benchmarks.runner import AGING_STATES, FTLS

    fresh = AGING_STATES["fresh (0K P/E)"]
    aged = AGING_STATES["2K P/E + 1-year"]
    cases = [(f"{ftl}-OLTP", ftl, "OLTP", fresh) for ftl in FTLS]
    cases.append(("cube-Proxy", "cube", "Proxy", fresh))
    cases.append(("cube-OLTP-aged", "cube", "OLTP", aged))
    # demand-paged mapping: the translation-traffic overhead case
    cases.append(("dftl-OLTP", "dftl", "OLTP", fresh))
    return cases

#: sizing knobs: smoke is the CI-friendly size, full the nightly one
SIZES = {
    "smoke": dict(
        requests=600, warmup=100, blocks_per_chip=8, prefill=0.3, queue_depth=8
    ),
    "full": dict(
        requests=4000, warmup=500, blocks_per_chip=16, prefill=0.5,
        queue_depth=16,
    ),
}


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX host
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is KB on Linux, bytes on macOS
    scale = 1024 if sys.platform == "darwin" else 1
    return int(usage.ru_maxrss // scale)


def _latency_dict(hist) -> dict:
    return {
        "count": len(hist),
        "mean_us": hist.mean_us,
        "p50_us": hist.percentile(50),
        "p90_us": hist.percentile(90),
        "p99_us": hist.percentile(99),
        "max_us": hist.max_us,
    }


def run_case(
    name: str, ftl: str, workload: str, size: dict, seed: int, aging=None,
    checkpoint_every: Optional[int] = None,
) -> dict:
    from repro.api import run_simulation
    from repro.nand.geometry import BlockGeometry, SSDGeometry
    from repro.ssd.config import SSDConfig

    geometry = SSDGeometry(
        n_channels=2,
        chips_per_channel=4,
        blocks_per_chip=size["blocks_per_chip"],
        block=BlockGeometry(),
    )
    config = SSDConfig(geometry=geometry)
    if aging is not None:
        config = config.with_aging(aging)
    started = time.perf_counter()
    result = run_simulation(
        config,
        workload,
        ftl=ftl,
        queue_depth=size["queue_depth"],
        warmup_requests=size["warmup"],
        prefill=size["prefill"],
        n_requests=size["requests"],
        seed=seed,
        telemetry=True,
    )
    wall = time.perf_counter() - started
    stats = result.stats
    case = {
        "name": name,
        "ftl": ftl,
        "workload": workload,
        "requests": size["requests"],
        "iops": stats.iops,
        "read_latency": _latency_dict(stats.read_latency),
        "write_latency": _latency_dict(stats.write_latency),
        "wall_clock_s": wall,
        "peak_rss_kb": _peak_rss_kb(),
        "counters": stats.to_dict()["counters"],
        "telemetry": result.telemetry,
    }
    if checkpoint_every is not None:
        # overhead probe: the same case run *with* checkpointing.  The
        # primary metrics above always come from the checkpoint-off run,
        # so baselines diff at exactly 0.0 % regardless of this knob;
        # the sub-dict records what periodic durability costs.
        import shutil
        import tempfile

        ckpt_dir = tempfile.mkdtemp(prefix="bench-ckpt-")
        try:
            started = time.perf_counter()
            ckpt_result = run_simulation(
                config,
                workload,
                ftl=ftl,
                queue_depth=size["queue_depth"],
                warmup_requests=size["warmup"],
                prefill=size["prefill"],
                n_requests=size["requests"],
                seed=seed,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=ckpt_dir,
            )
            ckpt_wall = time.perf_counter() - started
            checkpoints = len(os.listdir(ckpt_dir))
        finally:
            shutil.rmtree(ckpt_dir, ignore_errors=True)
        case["checkpoint"] = {
            "every": checkpoint_every,
            "checkpoints_written": checkpoints,
            "iops": ckpt_result.stats.iops,
            "wall_clock_s": ckpt_wall,
            "wall_overhead_pct": (
                100.0 * (ckpt_wall - wall) / wall if wall > 0 else None
            ),
        }
    return case


def next_bench_path(directory: str) -> str:
    taken = set()
    for entry in os.listdir(directory):
        match = re.fullmatch(r"BENCH_(\d+)\.json", entry)
        if match:
            taken.add(int(match.group(1)))
    index = 0
    while index in taken:
        index += 1
    return os.path.join(directory, f"BENCH_{index}.json")


#: per-case fields that depend on the machine, not the simulation; the
#: ``--canonical`` mode strips these (plus the top-level ``host`` block)
HOST_DEPENDENT_FIELDS = ("wall_clock_s", "peak_rss_kb")


def canonicalize(document: dict) -> dict:
    """Drop host-dependent fields so snapshots compare byte-for-byte."""
    document = dict(document)
    document.pop("host", None)
    document["canonical"] = True
    cases = []
    for case in document["cases"]:
        case = {k: v for k, v in case.items() if k not in HOST_DEPENDENT_FIELDS}
        if "checkpoint" in case:
            case["checkpoint"] = {
                k: v
                for k, v in case["checkpoint"].items()
                if k not in ("wall_clock_s", "wall_overhead_pct")
            }
        cases.append(case)
    document["cases"] = cases
    return document


def run_bench(
    smoke: bool,
    seed: int,
    label: str,
    jobs: int = 1,
    checkpoint_every: Optional[int] = None,
) -> dict:
    """Run every case (serially or across ``jobs`` workers) and build
    the snapshot document.

    Cases appear in the snapshot in definition order regardless of
    worker completion order, and every case runs with the same explicit
    ``seed`` under any ``jobs`` value, so the simulated metrics cannot
    depend on how the run was sharded.  A crashed case becomes an entry
    in the document's ``errors`` list instead of aborting the batch.

    A SIGINT (Ctrl-C) stops the batch cleanly: running workers are shut
    down and the document carries the completed cases plus
    ``"incomplete": true`` so a partial snapshot is never mistaken for a
    full one.
    """
    from repro.parallel import ShardSpec, ShardsInterrupted, run_shards

    size = SIZES["smoke" if smoke else "full"]
    mode = "smoke" if smoke else "full"
    shards = [
        ShardSpec(
            name=name,
            fn=run_case,
            kwargs=dict(
                name=name, ftl=ftl, workload=workload, size=size,
                seed=seed, aging=aging, checkpoint_every=checkpoint_every,
            ),
        )
        for name, ftl, workload, aging in _cases()
    ]

    def progress(outcome):
        status = "done" if outcome.ok else "FAILED"
        print(f"bench: {outcome.name} ({mode}) {status}", flush=True)

    incomplete = False
    try:
        outcomes = run_shards(shards, jobs=jobs, on_progress=progress)
    except ShardsInterrupted as interrupt:
        outcomes = interrupt.outcomes
        incomplete = True
    cases = [o.result for o in outcomes if o.ok]
    errors = [{"name": o.name, "error": o.error} for o in outcomes if not o.ok]
    document = {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "smoke": smoke,
        "seed": seed,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "cases": cases,
    }
    if checkpoint_every is not None:
        document["checkpoint_every"] = checkpoint_every
    if incomplete:
        document["incomplete"] = True
    if errors:
        document["errors"] = errors
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (fewer requests, smaller device)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--label", default="", help="free-form tag stored in the snapshot"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path; 'auto' (or omitted) appends the next free "
        "BENCH_<n>.json at the repo root",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to shard the cases across (default 1: "
        "serial; any value yields identical simulated metrics)",
    )
    parser.add_argument(
        "--canonical",
        action="store_true",
        help="strip host-dependent fields (wall-clock, RSS, host info) so "
        "snapshots are byte-identical across hosts and --jobs values",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        dest="checkpoint_every",
        metavar="N",
        help="also run each case with a checkpoint every N requests and "
        "record the overhead in a per-case 'checkpoint' sub-dict; the "
        "primary metrics always come from the checkpoint-off run",
    )
    args = parser.parse_args(argv)

    document = run_bench(
        args.smoke, args.seed, args.label, jobs=args.jobs,
        checkpoint_every=args.checkpoint_every,
    )
    if args.canonical:
        document = canonicalize(document)
    out = (
        next_bench_path(REPO_ROOT)
        if args.out in (None, "auto")
        else args.out
    )
    with open(out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for case in document["cases"]:
        wall = case.get("wall_clock_s")
        print(
            f"  {case['name']:>12}: {case['iops']:8.0f} IOPS, "
            f"read p99 {case['read_latency']['p99_us']:7.1f} us, "
            f"write p99 {case['write_latency']['p99_us']:7.1f} us"
            + (f", {wall:.2f} s wall" if wall is not None else "")
        )
        checkpoint = case.get("checkpoint")
        if checkpoint:
            overhead = checkpoint.get("wall_overhead_pct")
            print(
                f"  {'':>12}  checkpointed every {checkpoint['every']}: "
                f"{checkpoint['checkpoints_written']} checkpoint(s)"
                + (
                    f", {overhead:+.1f} % wall overhead"
                    if overhead is not None
                    else ""
                )
            )
    if document.get("incomplete"):
        print(
            f"bench INTERRUPTED: partial snapshot "
            f"({len(document['cases'])} case(s)) written to {out}",
            file=sys.stderr,
        )
        return 130
    print(f"bench snapshot written to {out}")
    if document.get("errors"):
        for failure in document["errors"]:
            print(f"FAILED case {failure['name']}:\n{failure['error']}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
