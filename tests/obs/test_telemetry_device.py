"""Device telemetry, the wall-clock profiler, and the no-perturbation
contract: attaching either must not change any simulated result."""

import pytest

from repro.api import run_simulation
from repro.ssd.config import SSDConfig


def _run(**kwargs):
    config = SSDConfig.small(logical_fraction=0.4)
    defaults = dict(
        ftl="cube", queue_depth=8, prefill=0.4, n_requests=300, seed=7
    )
    defaults.update(kwargs)
    return run_simulation(config, "OLTP", **defaults)


class TestDeviceTelemetry:
    def test_snapshot_has_device_instruments(self):
        snapshot = _run(telemetry=True).telemetry
        for name in (
            "nand_ops",
            "nand_program_us",
            "nand_read_retries",
            "chip_busy_us",
            "chip_queue_depth",
            "bus_busy_us",
            "bus_queue_depth",
            "ort_lookups",
            "ftl_counter",
            "engine_events_processed",
        ):
            assert name in snapshot, name

    def test_registry_mirrors_ftl_counters(self):
        # the collector re-reads the same live FTLCounters the result
        # schema serializes, so the two surfaces can never drift
        result = _run(telemetry=True)
        counters = result.to_dict()["counters"]
        mirrored = {
            entry["labels"]["counter"]: entry["value"]
            for entry in result.telemetry["ftl_counter"]["series"]
        }
        for key in ("flash_programs", "flash_reads", "erases", "gc_programs"):
            assert mirrored[key] == counters[key]

    def test_busy_time_spread_over_dies(self):
        result = _run(telemetry=True)
        busy = result.telemetry["chip_busy_us"]["series"]
        assert sum(entry["value"] for entry in busy) > 0
        assert len({entry["labels"]["die"] for entry in busy}) > 1

    def test_program_time_recorded_per_layer(self):
        result = _run(telemetry=True)
        series = result.telemetry["nand_program_us"]["series"]
        observed = [entry for entry in series if entry["count"]]
        assert observed
        for entry in observed:
            assert entry["sum"] / entry["count"] > 0

    def test_report_renders_heatmaps(self):
        report = _run(telemetry=True).telemetry_report()
        assert "die busy time" in report
        assert "tPROG" in report
        assert "queue depth" in report

    def test_report_requires_telemetry(self):
        with pytest.raises(ValueError):
            _run().telemetry_report()

    def test_snapshot_json_safe_and_deterministic(self):
        import json

        first = json.dumps(_run(telemetry=True).telemetry)
        second = json.dumps(_run(telemetry=True).telemetry)
        assert first == second


class TestNoPerturbation:
    def test_telemetry_and_profile_do_not_change_results(self):
        plain = _run().to_dict()
        observed = _run(telemetry=True, profile=True).to_dict()
        assert observed == plain

    def test_telemetry_with_trace_identical_jsonl(self, tmp_path):
        paths = [str(tmp_path / "off.jsonl"), str(tmp_path / "on.jsonl")]
        _run(trace=paths[0])
        _run(trace=paths[1], telemetry=True)
        with open(paths[0], "rb") as off, open(paths[1], "rb") as on:
            assert off.read() == on.read()


class TestProfiler:
    def test_sections_attributed(self):
        profile = _run(profile=True, trace="memory").profile
        sections = profile["sections_s"]
        for name in ("setup", "event_queue", "dispatch", "nand", "tracing"):
            assert name in sections, name
            assert sections[name] >= 0.0
        assert sum(sections.values()) <= profile["total_s"] * 1.5

    def test_result_field_absent_when_disabled(self):
        result = _run()
        assert result.profile is None
        assert result.telemetry is None
