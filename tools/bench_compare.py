#!/usr/bin/env python
"""Diff two ``tools/bench.py`` snapshots and fail on regressions.

Cases are matched by name.  A case regresses when, beyond tolerance
(default 10 %):

- IOPS dropped: ``new.iops < old.iops * (1 - tol)``
- p99 latency rose: ``new.p99 > old.p99 * (1 + tol)`` (read or write)

The simulated metrics are seeded and deterministic, so on an unchanged
simulator the deltas are exactly zero; the tolerance is headroom for
*intentional* model changes, which should regenerate the baseline.
Wall-clock and RSS are host-dependent and reported informationally;
``--wall-tolerance`` opts into gating on wall-clock too (useful when
both snapshots come from the same machine, e.g. one CI job)::

    PYTHONPATH=src python tools/bench_compare.py BENCH_0.json BENCH_1.json

Exits 1 on any regression, 2 on mismatched snapshots.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _pct(new: float, old: float) -> str:
    if new is None or old is None:
        return "n/a"
    if old == 0:
        return "n/a" if new == 0 else "+inf"
    return f"{100.0 * (new - old) / old:+.1f} %"


class SchemaDriftError(Exception):
    """A snapshot lacks a key this comparator gates on.

    BENCH generations can drift (fields added, renamed, dropped); the
    comparator must *name* the missing key and the snapshot it came
    from, not die with a KeyError traceback -- a crashed CI diff is
    indistinguishable from a broken comparator."""


def _metric(case: dict, source: str, *path: str):
    """Fetch a (possibly nested) metric, naming any missing key."""
    value = case
    walked = []
    for key in path:
        walked.append(key)
        if not isinstance(value, dict) or key not in value:
            name = case.get("name", "?") if isinstance(case, dict) else "?"
            raise SchemaDriftError(
                f"case {name!r} in {source} is missing metric "
                f"{'.'.join(walked)!r} (bench schema drift -- regenerate "
                f"the baseline or pin matching bench generations)"
            )
        value = value[key]
    return value


def compare_case(
    old: dict,
    new: dict,
    tolerance: float,
    wall_tolerance: Optional[float],
    old_source: str = "<old>",
    new_source: str = "<new>",
) -> List[str]:
    """Regression messages for one matched case (empty when clean).

    Raises :class:`SchemaDriftError` when a gated metric is absent from
    either snapshot."""
    problems = []
    old_iops = _metric(old, old_source, "iops")
    new_iops = _metric(new, new_source, "iops")
    if new_iops < old_iops * (1.0 - tolerance):
        problems.append(
            f"{new['name']}: IOPS regressed {old_iops:.0f} -> "
            f"{new_iops:.0f} ({_pct(new_iops, old_iops)})"
        )
    for block in ("read_latency", "write_latency"):
        old_p99 = _metric(old, old_source, block, "p99_us")
        new_p99 = _metric(new, new_source, block, "p99_us")
        if new_p99 > old_p99 * (1.0 + tolerance):
            problems.append(
                f"{new['name']}: {block} p99 regressed {old_p99:.1f} -> "
                f"{new_p99:.1f} us ({_pct(new_p99, old_p99)})"
            )
    if wall_tolerance is not None:
        old_wall = _metric(old, old_source, "wall_clock_s")
        new_wall = _metric(new, new_source, "wall_clock_s")
        if new_wall > old_wall * (1.0 + wall_tolerance):
            problems.append(
                f"{new['name']}: wall-clock regressed {old_wall:.2f} -> "
                f"{new_wall:.2f} s ({_pct(new_wall, old_wall)})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="baseline BENCH_<n>.json")
    parser.add_argument("new", help="candidate BENCH_<n>.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative drift in IOPS / p99 latency (default 0.10)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        help="also gate on wall-clock with this tolerance (off by default: "
        "wall time is host-dependent)",
    )
    args = parser.parse_args(argv)

    with open(args.old) as handle:
        old_doc = json.load(handle)
    with open(args.new) as handle:
        new_doc = json.load(handle)
    if old_doc.get("smoke") != new_doc.get("smoke"):
        print(
            "FAIL: comparing a smoke snapshot against a full one",
            file=sys.stderr,
        )
        return 2
    for source, document in ((args.old, old_doc), (args.new, new_doc)):
        if not isinstance(document.get("cases"), list):
            print(
                f"FAIL: {source} has no 'cases' list "
                "(not a tools/bench.py snapshot, or bench schema drift)",
                file=sys.stderr,
            )
            return 2
        unnamed = [c for c in document["cases"] if "name" not in c]
        if unnamed:
            print(
                f"FAIL: {source} has {len(unnamed)} case(s) without a "
                "'name' key (bench schema drift)",
                file=sys.stderr,
            )
            return 2

    old_cases = {case["name"]: case for case in old_doc["cases"]}
    new_cases = {case["name"]: case for case in new_doc["cases"]}
    missing = sorted(set(old_cases) - set(new_cases))
    if missing:
        print(f"FAIL: cases missing from {args.new}: {missing}", file=sys.stderr)
        return 2

    def info(case, *path):
        """Informational metric: None (printed as n/a) when absent."""
        value = case
        for key in path:
            if not isinstance(value, dict) or key not in value:
                return None
            value = value[key]
        return value

    problems: List[str] = []
    for name in sorted(old_cases):
        old_case, new_case = old_cases[name], new_cases[name]
        try:
            problems += compare_case(
                old_case, new_case, args.tolerance, args.wall_tolerance,
                old_source=args.old, new_source=args.new,
            )
        except SchemaDriftError as drift:
            print(f"FAIL: {drift}", file=sys.stderr)
            return 2
        old_iops = info(old_case, "iops")
        new_iops = info(new_case, "iops")
        print(
            f"{name:>12}: IOPS "
            f"{old_iops:8.0f} -> {new_iops:8.0f} "
            f"({_pct(new_iops, old_iops)}), "
            f"read p99 {_pct(info(new_case, 'read_latency', 'p99_us'), info(old_case, 'read_latency', 'p99_us'))}, "
            f"write p99 {_pct(info(new_case, 'write_latency', 'p99_us'), info(old_case, 'write_latency', 'p99_us'))}, "
            f"wall {_pct(info(new_case, 'wall_clock_s'), info(old_case, 'wall_clock_s'))} (info)"
        )
    extra = sorted(set(new_cases) - set(old_cases))
    if extra:
        print(f"note: new cases not in baseline: {extra}")

    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print(f"OK: {len(old_cases)} case(s) within {args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
