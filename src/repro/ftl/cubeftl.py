"""cubeFTL: the paper's process-similarity-aware FTL (Section 5).

cubeFTL extends the page-mapping baseline with two modules:

- the **OPM** (Optimal Parameter Manager) monitors every h-layer's leader
  WL, derives verify-skip plans and (V_start, V_final) windows for the
  followers, runs the post-program safety check, and maintains the ORT of
  per-h-layer read offsets;
- the **WAM** (WL Allocation Manager) watches the write-buffer
  utilization and allocates fast follower WLs under write-bandwidth
  pressure while preserving them (using slow leaders) when the normal
  program speed suffices, over MOS-managed active blocks.

``wam_enabled=False`` gives the paper's **cubeFTL-** ablation: the OPM
still accelerates followers and reads, but WLs are consumed in plain
horizontal-first order with no workload awareness (Section 6.3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.opm import OptimalParameterManager
from repro.core.safety import SafetyVerdict
from repro.core.wam import Allocation, SequentialCursor, WLAllocationManager
from repro.ftl.base import BaseFTL
from repro.nand.chip import ProgramResult, ReadResult
from repro.nand.ispp import ProgramParams
from repro.nand.read_retry import ReadParams
from repro.ssd.config import SSDConfig


class CubeFTL(BaseFTL):
    """PS-aware FTL: OPM + WAM + mixed-order WL allocation."""

    name = "cubeFTL"

    def __init__(
        self,
        config: SSDConfig,
        controller,
        wam_enabled: bool = True,
        opm: OptimalParameterManager = None,
        enable_vfy_skip: bool = True,
        enable_window_adjust: bool = True,
        enable_ort: bool = True,
    ) -> None:
        super().__init__(config, controller)
        self.wam_enabled = wam_enabled
        if not wam_enabled:
            self.name = "cubeFTL-"
        self.opm = opm or OptimalParameterManager(
            controller.ispp,
            enable_vfy_skip=enable_vfy_skip,
            enable_window_adjust=enable_window_adjust,
        )
        self.enable_ort = enable_ort
        self.wam = WLAllocationManager(
            config.geometry.block,
            active_blocks_per_chip=config.active_blocks_per_chip,
            mu_threshold=config.mu_threshold,
        )
        # horizontal-first cursors for the WAM-disabled ablation
        self._seq_cursors: Dict[int, List[SequentialCursor]] = {
            chip: [] for chip in range(config.geometry.n_chips)
        }

    # ------------------------------------------------------------------
    # allocation policy
    # ------------------------------------------------------------------

    def install_block(self, chip_id: int, block: int) -> None:
        if self.wam_enabled:
            self.wam.install_block(chip_id, block)
        else:
            self._seq_cursors[chip_id].append(
                SequentialCursor(block, self.geometry.block)
            )

    def cursor_count(self, chip_id: int) -> int:
        if self.wam_enabled:
            return len(self.wam.cursors(chip_id))
        return len(self._seq_cursors[chip_id])

    def active_cursor_space(self, chip_id: int) -> int:
        if self.wam_enabled:
            return self.wam.free_wls(chip_id)
        return sum(cursor.free_wls() for cursor in self._seq_cursors[chip_id])

    def allocate_wl(self, chip_id: int) -> Allocation:
        if self.wam_enabled:
            allocation = self.wam.allocate(chip_id, self.buffer.utilization)
            if allocation is None:
                raise LookupError(f"chip {chip_id}: no active cursor space")
            return allocation
        cursors = self._seq_cursors[chip_id]
        for cursor in cursors:
            if not cursor.exhausted:
                allocation = cursor.take()
                if cursor.exhausted:
                    cursors.remove(cursor)
                return allocation
        raise LookupError(f"chip {chip_id}: no active cursor space")

    # ------------------------------------------------------------------
    # PS-aware program parameters
    # ------------------------------------------------------------------

    def program_params(
        self, chip_id: int, allocation: Allocation
    ) -> Tuple[ProgramParams, float]:
        layer = allocation.address.layer
        if self.opm.has_leader(chip_id, allocation.block, layer):
            params = self.opm.follower_params(chip_id, allocation.block, layer)
            return params, float(params.window_squeeze_mv)
        # no monitored parameters yet: program as a (monitoring) leader
        return ProgramParams.default(self.controller.ispp.n_states), 0.0

    def after_program(
        self,
        chip_id: int,
        allocation: Allocation,
        result: ProgramResult,
        squeeze_mv: float,
    ) -> bool:
        layer = allocation.address.layer
        if not self.opm.has_leader(chip_id, allocation.block, layer):
            self.opm.record_leader(chip_id, allocation.block, layer, result)
            return True
        verdict = self.opm.check_program(
            chip_id, allocation.block, layer, result, squeeze_mv
        )
        return verdict is SafetyVerdict.OK

    # ------------------------------------------------------------------
    # PS-aware reads
    # ------------------------------------------------------------------

    def read_params(self, chip_id: int, block: int, layer: int) -> ReadParams:
        if not self.enable_ort:
            return ReadParams()
        return self.opm.read_params(chip_id, block, layer)

    def after_read(
        self, chip_id: int, block: int, layer: int, result: ReadResult
    ) -> None:
        if self.enable_ort:
            self.opm.note_read(chip_id, block, layer, result)

    def on_block_erased(self, chip_id: int, block: int) -> None:
        self.opm.invalidate_block(chip_id, block, self.geometry.block.n_layers)

    def discard_block(self, chip_id: int, block: int) -> None:
        super().discard_block(chip_id, block)
        if self.wam_enabled:
            self.wam.discard_block(chip_id, block)
        else:
            self._seq_cursors[chip_id] = [
                cursor
                for cursor in self._seq_cursors[chip_id]
                if cursor.block != block
            ]

    def on_uncorrectable(self, chip_id: int, block: int, layer: int) -> bool:
        if not self.enable_ort:
            return False
        return self.opm.invalidate_read_entry(chip_id, block, layer)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def variant_state_dict(self) -> dict:
        return {
            "wam": self.wam.state_dict(),
            "opm": self.opm.state_dict(),
            "seq_cursors": {
                chip_id: [cursor.state_dict() for cursor in cursors]
                for chip_id, cursors in self._seq_cursors.items()
            },
        }

    def load_variant_state(self, state: dict) -> None:
        self.wam.load_state_dict(state["wam"])
        self.opm.load_state_dict(state["opm"])
        self._seq_cursors = {
            chip_id: [
                SequentialCursor.from_state(cursor_state, self.geometry.block)
                for cursor_state in cursor_states
            ]
            for chip_id, cursor_states in state["seq_cursors"].items()
        }

    def _post_spor_reset(self) -> None:
        super()._post_spor_reset()
        self.wam.reset()
        self._seq_cursors = {
            chip: [] for chip in range(self.geometry.n_chips)
        }
        # monitored parameters and the ORT live in controller RAM: gone
        self.opm.reset_monitored()
