"""Fault-injection campaigns versus the fault-free baseline.

Not a paper figure: the paper's platform measures healthy silicon.  This
bench drives the same device and workload under increasingly hostile
seeded fault campaigns (``none`` -> ``default`` -> ``heavy``) and
reports what the recovery machinery did -- program/erase failures
survived, blocks retired, low-margin pages scrubbed, stale ORT entries
invalidated -- alongside the performance cost.

Expected shape: every campaign completes the full workload (no request
is lost to an injected fault), recovery work grows with campaign
severity, and the fault-free run reports no recovery activity at all.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.faults import CAMPAIGNS
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.synthetic import uniform_random_trace

N_REQUESTS = 5000

#: campaign severity order for the table and the monotonicity checks
CAMPAIGN_ORDER = ("none", "default", "heavy")


def _config(campaign_name):
    geometry = SSDGeometry(
        n_channels=2,
        chips_per_channel=2,
        blocks_per_chip=32,
        block=BlockGeometry(),
    )
    return SSDConfig(
        geometry=geometry,
        logical_fraction=0.6,
        gc_trigger_blocks=6,
    ).with_faults(CAMPAIGNS[campaign_name])


def _run(campaign_name):
    config = _config(campaign_name)
    sim = SSDSimulation(config, ftl="cube")
    sim.prefill(1.0)
    hot_region = (0, int(config.logical_pages * 0.4))
    trace = uniform_random_trace(
        config.logical_pages,
        N_REQUESTS,
        read_fraction=0.3,
        seed=11,
        region=hot_region,
    )
    stats = sim.run(trace, queue_depth=32, warmup_requests=1000)
    sim.ftl.mapper.check_invariants()
    return stats


@pytest.fixture(scope="module")
def fault_results():
    return {name: _run(name) for name in CAMPAIGN_ORDER}


def test_fault_recovery(benchmark, fault_results):
    results = benchmark.pedantic(lambda: fault_results, rounds=1, iterations=1)
    rows = []
    for name, stats in results.items():
        recovery = stats.recovery
        rows.append([
            name,
            f"{stats.iops:.0f}",
            recovery.program_fails,
            recovery.erase_fails,
            recovery.blocks_retired,
            recovery.scrubs,
            recovery.ort_invalidations,
            recovery.recovered_reads,
            recovery.uncorrectable_after_recovery,
        ])
    emit(
        "fault_recovery",
        "Recovery work and throughput by fault campaign (cubeFTL):\n"
        + format_table(
            [
                "campaign", "IOPS", "pfail", "efail", "retired",
                "scrubs", "ort-inv", "rec-reads", "uncorr",
            ],
            rows,
        ),
    )
    none, default, heavy = (results[name] for name in CAMPAIGN_ORDER)
    # every campaign completed the whole workload
    for stats in results.values():
        assert stats.completed_requests == N_REQUESTS - 1000
    # the fault-free run reports no recovery activity at all
    assert not none.recovery.any()
    assert "recovery" not in none.to_dict()
    # the default campaign survived real structural faults
    assert default.recovery.program_fails > 0
    assert default.recovery.blocks_retired > 0
    # recovery work grows with campaign severity
    def structural(stats):
        return (
            stats.recovery.program_fails
            + stats.recovery.erase_fails
            + stats.recovery.blocks_retired
        )

    assert structural(heavy) > structural(default)
    # injected faults cost performance, they never add it
    assert heavy.iops < none.iops
