"""Per-chip block lifecycle: free pool, active blocks, full blocks, GC
victim selection."""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.ftl.mapping import PageMapper
from repro.nand.geometry import SSDGeometry


class OutOfSpaceError(RuntimeError):
    """A chip ran out of free blocks (GC could not keep up)."""


class BlockState(enum.Enum):
    FREE = "free"
    ACTIVE = "active"
    FULL = "full"
    RETIRED = "retired"


class BlockManager:
    """Tracks every block's lifecycle state per chip."""

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry
        self._free: Dict[int, Deque[int]] = {}
        self._state: Dict[int, List[BlockState]] = {}
        for chip_id in range(geometry.n_chips):
            self._free[chip_id] = deque(range(geometry.blocks_per_chip))
            self._state[chip_id] = [BlockState.FREE] * geometry.blocks_per_chip

    def state(self, chip_id: int, block: int) -> BlockState:
        return self._state[chip_id][block]

    def free_count(self, chip_id: int) -> int:
        return len(self._free[chip_id])

    def take_free(
        self, chip_id: int, key: Optional[Callable[[int], int]] = None
    ) -> int:
        """Pop a free block and mark it active.

        Without ``key`` blocks recycle FIFO; with a ``key`` (e.g. the
        erase count, for dynamic wear leveling) the free block minimizing
        it is chosen.
        """
        free = self._free[chip_id]
        if not free:
            raise OutOfSpaceError(f"chip {chip_id} has no free blocks")
        if key is None:
            block = free.popleft()
        else:
            block = min(free, key=key)
            free.remove(block)
        self._state[chip_id][block] = BlockState.ACTIVE
        return block

    def mark_full(self, chip_id: int, block: int) -> None:
        if self._state[chip_id][block] is not BlockState.ACTIVE:
            raise ValueError(f"block {block} is not active")
        self._state[chip_id][block] = BlockState.FULL

    def mark_free(self, chip_id: int, block: int) -> None:
        """Return an erased block to the free pool."""
        if self._state[chip_id][block] is BlockState.FREE:
            raise ValueError(f"block {block} is already free")
        self._state[chip_id][block] = BlockState.FREE
        self._free[chip_id].append(block)

    def retire(self, chip_id: int, block: int) -> None:
        """Permanently remove a worn-out block from service.

        The block must hold no valid data (it is retired after its
        contents were migrated and its final erase failed or its
        endurance limit was reached).
        """
        state = self._state[chip_id][block]
        if state is BlockState.RETIRED:
            return
        if state is BlockState.FREE:
            self._free[chip_id].remove(block)
        self._state[chip_id][block] = BlockState.RETIRED

    def retired_count(self, chip_id: int) -> int:
        return sum(
            1 for state in self._state[chip_id] if state is BlockState.RETIRED
        )

    def full_blocks(self, chip_id: int) -> List[int]:
        return [
            block
            for block, state in enumerate(self._state[chip_id])
            if state is BlockState.FULL
        ]

    def select_victim(self, chip_id: int, mapper: PageMapper) -> int:
        """Greedy GC victim: the full block with the fewest valid pages."""
        candidates = self.full_blocks(chip_id)
        if not candidates:
            raise OutOfSpaceError(f"chip {chip_id} has no GC victim")
        return min(candidates, key=lambda block: mapper.valid_count(chip_id, block))

    def counts(self, chip_id: int) -> Dict[BlockState, int]:
        result = {state: 0 for state in BlockState}
        for state in self._state[chip_id]:
            result[state] += 1
        return result
