"""Property-based tests of the reliability surface."""

from hypothesis import given, strategies as st

from repro.nand.reliability import AgingState, ReliabilityModel

MODEL = ReliabilityModel()

locations = st.tuples(
    st.integers(min_value=0, max_value=7),    # chip
    st.integers(min_value=0, max_value=63),   # block
    st.integers(min_value=0, max_value=47),   # layer
    st.integers(min_value=0, max_value=3),    # wl
)

agings = st.builds(
    AgingState,
    pe_cycles=st.integers(min_value=0, max_value=3000),
    retention_months=st.floats(min_value=0.0, max_value=24.0),
)


@given(location=locations, aging=agings)
def test_ber_always_positive_and_finite(location, aging):
    chip, block, layer, wl = location
    ber = MODEL.wl_ber(chip, block, layer, wl, aging)
    assert 0 < ber < 1


@given(location=locations, aging=agings)
def test_intra_layer_similarity_holds_everywhere(location, aging):
    """The discovery itself, as a universal property: any two WLs of any
    h-layer differ by less than 3 % under any aging condition."""
    chip, block, layer, _wl = location
    bers = [MODEL.wl_ber(chip, block, layer, wl, aging) for wl in range(4)]
    assert max(bers) / min(bers) < 1.03


@given(location=locations, aging=agings, extra_pe=st.integers(1, 1500))
def test_ber_monotone_in_pe_property(location, aging, extra_pe):
    """The noise-free layer BER never decreases with cycling (per-WL
    values carry RTN-scale measurement noise, so they are monotone only
    up to ~1 %)."""
    chip, block, layer, _wl = location
    older = AgingState(aging.pe_cycles + extra_pe, aging.retention_months)
    assert MODEL.layer_ber(chip, block, layer, older) >= MODEL.layer_ber(
        chip, block, layer, aging
    )


@given(location=locations, aging=agings,
       extra_ret=st.floats(min_value=0.5, max_value=12.0))
def test_ber_monotone_in_retention_property(location, aging, extra_ret):
    chip, block, layer, _wl = location
    older = AgingState(aging.pe_cycles, aging.retention_months + extra_ret)
    assert MODEL.layer_ber(chip, block, layer, older) >= MODEL.layer_ber(
        chip, block, layer, aging
    )


@given(location=locations, aging=agings)
def test_ber_ep1_always_below_total(location, aging):
    chip, block, layer, wl = location
    assert MODEL.ber_ep1(chip, block, layer, wl, aging) < MODEL.wl_ber(
        chip, block, layer, wl, aging
    )


@given(location=locations)
def test_program_slowdown_in_unit_interval(location):
    chip, block, layer, _wl = location
    assert 0.0 <= MODEL.program_slowdown(chip, block, layer) <= 1.0


@given(location=locations, aging=agings)
def test_determinism_property(location, aging):
    chip, block, layer, wl = location
    assert MODEL.wl_ber(chip, block, layer, wl, aging) == MODEL.wl_ber(
        chip, block, layer, wl, aging
    )
