"""Resumable sweep orchestration: manifest + per-shard result files.

A sweep checkpoint directory holds

- ``manifest.json`` -- the sweep's identity: schema version, base seed,
  and the ordered shard-name list.  A rerun must present the identical
  identity; anything else is a :class:`ManifestMismatch` (silently
  mixing results from two different sweeps is exactly the bug this
  guards against).
- ``shard_<name>.pkl`` -- one pickled :class:`~repro.parallel.ShardOutcome`
  per *successfully completed* shard, written as each shard lands.

:func:`run_shards_resumable` wraps :func:`repro.parallel.run_shards`:
on a rerun it loads every saved outcome (marking it ``cached=True``),
launches only the still-unfinished shards, and keeps saving as they
complete -- so an interrupted sweep (Ctrl-C, crash, power loss) costs
only the shards that had not finished.  Failed shards are *not* saved:
a rerun retries them.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from typing import Callable, List, Optional, Sequence

from repro.parallel.runner import (
    ShardOutcome,
    ShardSpec,
    ShardsInterrupted,
    run_shards,
)

MANIFEST_SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"

_UNSAFE_RE = re.compile(r"[^A-Za-z0-9._-]+")


class ManifestMismatch(ValueError):
    """The checkpoint directory belongs to a different sweep."""


def shard_result_path(checkpoint_dir: str, name: str) -> str:
    """Filesystem path of one shard's saved outcome.

    The filename embeds a digest of the exact shard name, so names that
    only differ in sanitized-away characters can never collide.
    """
    slug = _UNSAFE_RE.sub("_", name)[:80]
    digest = hashlib.sha256(name.encode()).hexdigest()[:10]
    return os.path.join(checkpoint_dir, f"shard_{slug}_{digest}.pkl")


def write_manifest(
    checkpoint_dir: str, names: Sequence[str], base_seed: int
) -> None:
    os.makedirs(checkpoint_dir, exist_ok=True)
    payload = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "base_seed": base_seed,
        "shards": list(names),
    }
    tmp_path = os.path.join(checkpoint_dir, f".{MANIFEST_NAME}.tmp")
    with open(tmp_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp_path, os.path.join(checkpoint_dir, MANIFEST_NAME))


def load_manifest(checkpoint_dir: str) -> Optional[dict]:
    path = os.path.join(checkpoint_dir, MANIFEST_NAME)
    if not os.path.isfile(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def run_shards_resumable(
    specs: Sequence[ShardSpec],
    jobs: int = 1,
    checkpoint_dir: Optional[str] = None,
    base_seed: int = 7,
    on_progress: Optional[Callable[[ShardOutcome], None]] = None,
    retries: int = 0,
    registry=None,
    heartbeat: Optional[Callable[[str, dict], None]] = None,
) -> List[ShardOutcome]:
    """:func:`repro.parallel.run_shards` with sweep-level durability.

    With ``checkpoint_dir=None`` this is exactly ``run_shards``.  With a
    directory, previously saved outcomes are loaded instead of re-run
    (``cached=True`` provenance), only unfinished shards launch, and
    each success is saved as it lands.  On SIGINT the raised
    :class:`~repro.parallel.ShardsInterrupted` carries cached *and*
    freshly completed outcomes, and everything saved so far survives for
    the next rerun.
    """
    if checkpoint_dir is None:
        return run_shards(
            specs, jobs=jobs, on_progress=on_progress,
            retries=retries, registry=registry, heartbeat=heartbeat,
        )
    names = [spec.name for spec in specs]
    manifest = load_manifest(checkpoint_dir)
    if manifest is None:
        write_manifest(checkpoint_dir, names, base_seed)
    else:
        if (
            manifest.get("schema_version") != MANIFEST_SCHEMA_VERSION
            or manifest.get("shards") != names
            or manifest.get("base_seed") != base_seed
        ):
            raise ManifestMismatch(
                f"{checkpoint_dir}: existing manifest does not match this "
                "sweep (different shards, base seed, or schema); use a "
                "fresh checkpoint directory"
            )

    cached: dict = {}
    for spec in specs:
        path = shard_result_path(checkpoint_dir, spec.name)
        if os.path.isfile(path):
            with open(path, "rb") as fh:
                outcome = pickle.load(fh)
            outcome.cached = True
            cached[spec.name] = outcome

    def _save(outcome: ShardOutcome) -> None:
        if outcome.ok:
            path = shard_result_path(checkpoint_dir, outcome.name)
            tmp_path = path + ".tmp"
            with open(tmp_path, "wb") as fh:
                pickle.dump(outcome, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        if on_progress is not None:
            on_progress(outcome)

    todo = [spec for spec in specs if spec.name not in cached]
    for spec in specs:
        if spec.name in cached and on_progress is not None:
            on_progress(cached[spec.name])
    try:
        fresh = run_shards(
            todo, jobs=jobs, on_progress=_save,
            retries=retries, registry=registry, heartbeat=heartbeat,
        )
    except ShardsInterrupted as interrupt:
        by_name = dict(cached)
        by_name.update(
            {outcome.name: outcome for outcome in interrupt.outcomes}
        )
        raise ShardsInterrupted(
            [by_name[name] for name in names if name in by_name]
        ) from None
    by_name = dict(cached)
    by_name.update({outcome.name: outcome for outcome in fresh})
    return [by_name[name] for name in names]
