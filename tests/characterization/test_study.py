"""Tests for the characterization harness and metrics."""

import pytest

from repro.characterization.harness import CharacterizationStudy, StudyConfig
from repro.characterization.metrics import delta_h, delta_v, normalize_over_best
from repro.nand.geometry import BlockGeometry
from repro.nand.reliability import AgingState


@pytest.fixture(scope="module")
def study():
    return CharacterizationStudy(StudyConfig(n_chips=2, blocks_per_chip=3))


class TestMetrics:
    def test_delta_of_equal_values_is_one(self):
        assert delta_v([10, 10, 10]) == 1.0
        assert delta_h([7, 7]) == 1.0

    def test_ratio(self):
        assert delta_v([5, 10, 20]) == 4.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            delta_h([0, 1])
        with pytest.raises(ValueError):
            delta_v([])

    def test_normalize_over_best(self):
        normalized = normalize_over_best([4.0, 2.0, 6.0])
        assert list(normalized) == [2.0, 1.0, 3.0]

    def test_normalize_rejects_non_positive(self):
        with pytest.raises(ValueError):
            normalize_over_best([0.0, 1.0])


class TestStudyConfig:
    def test_totals(self):
        config = StudyConfig(n_chips=4, blocks_per_chip=10)
        assert config.total_blocks == 40
        assert config.total_wls == 40 * 192
        assert config.total_pages == 40 * 576

    def test_paper_scale_counts(self):
        """The paper's study: 160 chips x 128 blocks > 20 000 blocks,
        more than 11 M pages."""
        config = StudyConfig(n_chips=160, blocks_per_chip=128,
                             geometry=BlockGeometry())
        assert config.total_blocks == 20_480
        assert config.total_pages == 11_796_480


class TestMeasurement:
    def test_grid_shape(self, study):
        grid = study.measure(AgingState(1000, 1.0))
        assert grid.shape == (6, 48, 4)
        assert (grid > 0).all()

    def test_measurement_cached(self, study):
        a = study.measure(AgingState(500, 1.0))
        b = study.measure(AgingState(500, 1.0))
        assert a is b

    def test_measure_grid_keys(self, study):
        grid = study.measure_grid([0, 2000], [0.0, 12.0])
        assert set(grid) == {(0, 0.0), (0, 12.0), (2000, 0.0), (2000, 12.0)}

    def test_delta_h_values_near_one(self, study):
        values = study.delta_h_values(AgingState(2000, 12.0))
        assert values.shape == (6, 48)
        assert values.max() < 1.035

    def test_delta_v_values_large(self, study):
        values = study.delta_v_values(AgingState(0, 0.0))
        assert values.shape == (6, 4)
        assert values.mean() > 1.3

    def test_t_prog_identical_within_layers(self, study):
        grid = study.t_prog_per_wl(0)
        assert grid.shape == (48, 4)
        for layer in range(48):
            assert len(set(grid[layer])) == 1
        # ... but differs across layers
        assert len({grid[layer, 0] for layer in range(48)}) > 1
