"""Quickstart: process similarity at the chip level, end to end.

Programs the leading WL of an h-layer with default (conservative)
parameters, monitors its per-state ISPP loop intervals and E<->P1 BER,
and then programs the remaining WLs of the h-layer as fast *followers* --
skipping redundant verifies and tightening the (V_start, V_final) window
exactly as cubeFTL's OPM does.  Finally demonstrates the PS-aware read
path: the first read of an aged h-layer pays retries, subsequent reads of
*any* WL on that h-layer reuse the learned offset.

Run:  python examples/quickstart.py
"""

from repro.core.maxloop import DEFAULT_MARGIN_TABLE, spare_margin
from repro.core.ort import OptimalReadTable
from repro.nand.chip import NandChip
from repro.nand.read_retry import ReadParams
from repro.nand.reliability import AgingState


def main() -> None:
    chip = NandChip(chip_id=0, n_blocks=4, env_shift_prob=0.0)
    block, layer = 0, 20

    # --- program side -------------------------------------------------
    print("== program-latency optimization (Sections 4.1.1/4.1.2) ==")
    leader = chip.program_wl(block, layer, wl=0)
    print(f"leader WL  : tPROG = {leader.t_prog_us:7.1f} us "
          f"({leader.ispp.executed_loops} loops, {leader.ispp.vfy_count} VFYs)")

    # what the OPM derives from the monitored values
    s_m = spare_margin(leader.ber_ep1)
    margin_mv = DEFAULT_MARGIN_TABLE.margin_mv(s_m)
    print(f"monitored  : BER_EP1 = {leader.ber_ep1:.2e}  ->  S_M = {s_m:.2f}"
          f"  ->  window margin = {margin_mv:.0f} mV")

    params = chip.ispp.follower_params(
        leader.monitored, window_squeeze_mv=int(margin_mv)
    )
    for wl in (1, 2, 3):
        follower = chip.program_wl(block, layer, wl, params=params)
        saving = 100 * (1 - follower.t_prog_us / leader.t_prog_us)
        print(f"follower {wl} : tPROG = {follower.t_prog_us:7.1f} us "
              f"({follower.ispp.vfy_skipped} VFYs skipped, "
              f"{saving:.1f} % faster, clean={follower.ispp.clean})")

    # --- read side ------------------------------------------------------
    print("\n== read-latency optimization (Section 4.2) ==")
    aged = NandChip(chip_id=1, n_blocks=4, env_shift_prob=0.0)
    aged.set_baseline_aging(AgingState(2000, 12.0))  # end of life
    for wl in range(4):
        aged.program_wl(block, layer, wl)

    ort = OptimalReadTable()
    total_unaware = 0
    total_aware = 0
    for wl in range(4):
        for page in range(3):
            baseline = aged.read_page(block, layer, wl, page)
            total_unaware += baseline.num_retry
            hint = ort.get(aged.chip_id, block, layer)
            result = aged.read_page(block, layer, wl, page,
                                    ReadParams(offset_hint=hint))
            ort.update(aged.chip_id, block, layer, result.final_offset)
            total_aware += result.num_retry
    print(f"12 reads of one aged h-layer: "
          f"{total_unaware} retries PS-unaware vs {total_aware} with the ORT")


if __name__ == "__main__":
    main()
