"""ECC engine model.

The flash controller protects each page with per-codeword ECC (BCH/LDPC
class).  The model works with expected error counts: a page of ``n`` bits
at raw bit error rate ``ber`` carries ``ber * n`` raw errors spread over
its codewords; the page decodes iff the worst codeword stays within the
correction capability.

The engine's :attr:`ber_limit` is the threshold the paper's Fig. 9 calls
the *ECC correction capability*: program-parameter relaxation is safe
exactly while the resulting BER stays below it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EccEngine:
    """Per-codeword error correction model.

    Defaults: 1-KiB codewords with 72-bit correction, a common
    enterprise-TLC operating point.
    """

    codeword_bytes: int = 1024
    correctable_bits: int = 72
    #: headroom factor: vendors derate the hard limit to keep the
    #: uncorrectable-page probability negligible
    derating: float = 0.88

    def __post_init__(self) -> None:
        if self.codeword_bytes < 1:
            raise ValueError("codeword_bytes must be >= 1")
        if self.correctable_bits < 1:
            raise ValueError("correctable_bits must be >= 1")
        if not 0.0 < self.derating <= 1.0:
            raise ValueError("derating must be in (0, 1]")

    @property
    def codeword_bits(self) -> int:
        return self.codeword_bytes * 8

    @property
    def ber_limit(self) -> float:
        """Maximum raw BER the engine can reliably correct."""
        return self.derating * self.correctable_bits / self.codeword_bits

    def codewords_per_page(self, page_size_bytes: int) -> int:
        if page_size_bytes % self.codeword_bytes:
            raise ValueError("page size must be a codeword multiple")
        return page_size_bytes // self.codeword_bytes

    def raw_errors_per_codeword(self, ber: float) -> float:
        """Expected raw bit errors per codeword at a given raw BER."""
        if ber < 0:
            raise ValueError("ber must be >= 0")
        return ber * self.codeword_bits

    def correctable(self, ber: float) -> bool:
        """Whether a page read at raw BER ``ber`` decodes successfully."""
        return ber <= self.ber_limit

    def margin(self, ber: float) -> float:
        """Remaining correction headroom, normalized (1 = fresh, 0 = at
        the limit, negative = uncorrectable)."""
        return 1.0 - ber / self.ber_limit
