"""The continuous-benchmark runner and its regression comparator."""

import copy
import importlib.util
import json
import os

import pytest

TOOLS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "tools",
)


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(TOOLS, f"{name}.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench = _load("bench")
bench_compare = _load("bench_compare")
check_schema = _load("check_schema")


@pytest.fixture(scope="module")
def snapshot():
    """One tiny seeded bench document shared by the tests."""
    size = dict(
        requests=150, warmup=0, blocks_per_chip=8, prefill=0.3, queue_depth=8
    )
    case = bench.run_case("cube-OLTP", "cube", "OLTP", size, seed=7)
    return {
        "bench_schema_version": bench.BENCH_SCHEMA_VERSION,
        "label": "test",
        "smoke": True,
        "seed": 7,
        "host": {"python": "x", "platform": "x", "cpu_count": 1},
        "cases": [case],
    }


class TestBenchRunner:
    def test_case_fields(self, snapshot):
        case = snapshot["cases"][0]
        assert case["iops"] > 0
        assert case["read_latency"]["p99_us"] >= case["read_latency"]["p50_us"]
        assert case["counters"]["flash_programs"] > 0
        assert "chip_busy_us" in case["telemetry"]

    def test_simulated_metrics_deterministic(self, snapshot):
        size = dict(
            requests=150, warmup=0, blocks_per_chip=8, prefill=0.3,
            queue_depth=8,
        )
        again = bench.run_case("cube-OLTP", "cube", "OLTP", size, seed=7)
        for key in ("iops", "read_latency", "write_latency", "counters",
                    "telemetry"):
            assert again[key] == snapshot["cases"][0][key], key

    def test_document_json_serializable(self, snapshot):
        json.dumps(snapshot)

    def test_next_bench_path_increments(self, tmp_path):
        assert bench.next_bench_path(str(tmp_path)).endswith("BENCH_0.json")
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_1.json").write_text("{}")
        assert bench.next_bench_path(str(tmp_path)).endswith("BENCH_2.json")

    def test_passes_schema_check(self, snapshot):
        assert check_schema.check_bench(snapshot) == []

    def test_schema_check_flags_missing_case_key(self, snapshot):
        broken = copy.deepcopy(snapshot)
        del broken["cases"][0]["iops"]
        assert any("iops" in error for error in check_schema.check_bench(broken))


class TestBenchCompare:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_identical_snapshots_pass(self, snapshot, tmp_path, capsys):
        path = self._write(tmp_path, "a.json", snapshot)
        assert bench_compare.main([path, path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_latency_regression_fails(self, snapshot, tmp_path, capsys):
        regressed = copy.deepcopy(snapshot)
        regressed["cases"][0]["read_latency"]["p99_us"] *= 1.12
        old = self._write(tmp_path, "old.json", snapshot)
        new = self._write(tmp_path, "new.json", regressed)
        assert bench_compare.main([old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_injected_iops_regression_fails(self, snapshot, tmp_path):
        regressed = copy.deepcopy(snapshot)
        regressed["cases"][0]["iops"] *= 0.85
        old = self._write(tmp_path, "old.json", snapshot)
        new = self._write(tmp_path, "new.json", regressed)
        assert bench_compare.main([old, new]) == 1

    def test_within_tolerance_passes(self, snapshot, tmp_path):
        drifted = copy.deepcopy(snapshot)
        drifted["cases"][0]["read_latency"]["p99_us"] *= 1.05
        drifted["cases"][0]["iops"] *= 0.95
        old = self._write(tmp_path, "old.json", snapshot)
        new = self._write(tmp_path, "new.json", drifted)
        assert bench_compare.main([old, new]) == 0

    def test_wall_clock_not_gated_by_default(self, snapshot, tmp_path):
        slower = copy.deepcopy(snapshot)
        slower["cases"][0]["wall_clock_s"] *= 10.0
        old = self._write(tmp_path, "old.json", snapshot)
        new = self._write(tmp_path, "new.json", slower)
        assert bench_compare.main([old, new]) == 0
        assert bench_compare.main(
            [old, new, "--wall-tolerance", "0.5"]
        ) == 1

    def test_missing_case_is_an_error(self, snapshot, tmp_path):
        empty = copy.deepcopy(snapshot)
        empty["cases"] = []
        old = self._write(tmp_path, "old.json", snapshot)
        new = self._write(tmp_path, "new.json", empty)
        assert bench_compare.main([old, new]) == 2

    def test_smoke_vs_full_is_an_error(self, snapshot, tmp_path):
        full = copy.deepcopy(snapshot)
        full["smoke"] = False
        old = self._write(tmp_path, "old.json", snapshot)
        new = self._write(tmp_path, "new.json", full)
        assert bench_compare.main([old, new]) == 2
