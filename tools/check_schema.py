#!/usr/bin/env python
"""Validate a ``repro-ssd simulate --json`` result file (schema v2),
optionally a ``--trace`` JSONL span file, a ``tools/bench.py``
snapshot (``--bench``), a checkpoint directory's headers
(``--checkpoint``, see ``docs/PERSISTENCE.md``), a SimulationSpec
file (``--spec``, see ``docs/WORKLOADS.md``), and/or a run-artifact
directory written with ``--artifacts`` (``--run-artifact``, see
``docs/OBSERVABILITY.md``).

Used by the CI smoke steps to catch schema drift and tiling-contract
regressions on a tiny simulation::

    python tools/check_schema.py out.json --trace trace.jsonl
    python tools/check_schema.py --bench BENCH_0.json
    PYTHONPATH=src python tools/check_schema.py --checkpoint /tmp/ckpts
    PYTHONPATH=src python tools/check_schema.py --run-artifact runs/<run_id>

Exits nonzero with a list of problems on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

REQUIRED_TOP_LEVEL = [
    "schema_version",
    "ftl",
    "workload",
    "duration_us",
    "completed_requests",
    "iops",
    "read_latency",
    "write_latency",
    "counters",
]

REQUIRED_LATENCY_KEYS = [
    "count",
    "mean_us",
    "p50_us",
    "p90_us",
    "p99_us",
    "p999_us",
    "max_us",
]

#: every counter the typed serialization must emit, with its type
REQUIRED_COUNTERS = {
    "host_read_pages": int,
    "host_write_pages": int,
    "buffer_read_hits": int,
    "flash_reads": int,
    "flash_programs": int,
    "leader_programs": int,
    "follower_programs": int,
    "gc_reads": int,
    "gc_programs": int,
    "erases": int,
    "retired_blocks": int,
    "reprograms": int,
    "read_retries": int,
    "retried_reads": int,
    "vfy_skipped": int,
    "program_time_us": (int, float),
    "read_time_us": (int, float),
    "mean_t_prog_us": (int, float),
    "mean_num_retry": (int, float),
}


def check_stats(document: dict) -> List[str]:
    errors: List[str] = []
    for key in REQUIRED_TOP_LEVEL:
        if key not in document:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    if document["schema_version"] != 2:
        errors.append(
            f"schema_version is {document['schema_version']!r}, expected 2"
        )
    for block_name in ("read_latency", "write_latency"):
        block = document[block_name]
        for key in REQUIRED_LATENCY_KEYS:
            if key not in block:
                errors.append(f"{block_name} missing {key!r}")
    counters = document["counters"]
    for key, expected_type in REQUIRED_COUNTERS.items():
        if key not in counters:
            errors.append(f"counters missing {key!r}")
        elif not isinstance(counters[key], expected_type):
            errors.append(
                f"counters[{key!r}] is {type(counters[key]).__name__}, "
                f"expected {expected_type}"
            )
    if "metrics" in document:
        if not isinstance(document["metrics"], list):
            errors.append("metrics must be a list of samples")
        elif document["metrics"]:
            sample = document["metrics"][0]
            for key in ("t_us", "completed_requests", "buffer_utilization"):
                if key not in sample:
                    errors.append(f"metrics sample missing {key!r}")
    return errors


REQUIRED_BENCH_CASE_KEYS = [
    "name",
    "ftl",
    "workload",
    "requests",
    "iops",
    "read_latency",
    "write_latency",
    "wall_clock_s",
    "peak_rss_kb",
    "counters",
    "telemetry",
]

REQUIRED_BENCH_LATENCY_KEYS = [
    "count",
    "mean_us",
    "p50_us",
    "p90_us",
    "p99_us",
    "max_us",
]


def check_bench(document: dict) -> List[str]:
    errors: List[str] = []
    if document.get("bench_schema_version") != 1:
        errors.append(
            f"bench_schema_version is "
            f"{document.get('bench_schema_version')!r}, expected 1"
        )
    for key in ("smoke", "seed", "host", "cases"):
        if key not in document:
            errors.append(f"missing top-level key {key!r}")
    cases = document.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append("cases must be a non-empty list")
        return errors
    for index, case in enumerate(cases):
        where = f"cases[{index}]"
        for key in REQUIRED_BENCH_CASE_KEYS:
            if key not in case:
                errors.append(f"{where} missing {key!r}")
        for block_name in ("read_latency", "write_latency"):
            block = case.get(block_name)
            if not isinstance(block, dict):
                continue
            for key in REQUIRED_BENCH_LATENCY_KEYS:
                if key not in block:
                    errors.append(f"{where}.{block_name} missing {key!r}")
        telemetry = case.get("telemetry")
        if isinstance(telemetry, dict):
            for instrument in ("ftl_counter", "chip_busy_us", "nand_ops"):
                if instrument not in telemetry:
                    errors.append(
                        f"{where}.telemetry missing instrument {instrument!r}"
                    )
    names = [case.get("name") for case in cases]
    if len(names) != len(set(names)):
        errors.append("case names must be unique")
    return errors


def check_checkpoint(path: str) -> List[str]:
    """Validate a checkpoint directory's header against the persist
    schema (``repro.persist.validate_header``).

    ``path`` may be one ``ckpt_<n>`` directory or a parent directory
    holding several; every checkpoint found is validated.
    """
    # imported lazily: needs PYTHONPATH=src, like the trace check
    import os

    from repro.persist import (
        CheckpointError,
        list_checkpoints,
        read_header,
        validate_header,
    )

    if os.path.isfile(os.path.join(path, "header.json")):
        targets = [path]
    else:
        targets = list_checkpoints(path)
    if not targets:
        return [f"{path}: no checkpoints found"]
    errors: List[str] = []
    for target in targets:
        try:
            header = read_header(target)
        except (CheckpointError, OSError, json.JSONDecodeError) as exc:
            errors.append(f"{target}: unreadable header: {exc}")
            continue
        errors += [f"{target}: {problem}" for problem in validate_header(header)]
    return errors


def check_spec(path: str) -> List[str]:
    """Validate a ``--spec`` file (JSON/TOML :class:`SimulationSpec`)."""
    # imported lazily: needs PYTHONPATH=src, like the trace check
    from repro.specs import SpecError, load_spec_file, validate_spec_dict

    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:
            return [f"{path}: TOML specs need Python >= 3.11 (no tomllib)"]
        with open(path, "rb") as handle:
            try:
                data = tomllib.load(handle)
            except tomllib.TOMLDecodeError as exc:
                return [f"{path}: unparseable TOML: {exc}"]
    else:
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                return [f"{path}: unparseable JSON: {exc}"]
    problems = [f"{path}: {problem}" for problem in validate_spec_dict(data)]
    if problems:
        return problems
    # the structural pass said OK -- the full load must agree
    try:
        load_spec_file(path)
    except SpecError as exc:
        return [f"{path}: loads failed after validation passed: {exc}"]
    return []


def check_run_artifact(path: str) -> List[str]:
    """Validate one run-artifact directory (manifest hashes, spec
    round-trip, result schema) via ``repro.obs.artifact``."""
    # imported lazily: needs PYTHONPATH=src, like the trace check
    from repro.obs.artifact import validate_artifact

    return validate_artifact(path)


def check_trace(path: str) -> List[str]:
    # imported lazily: the stats check must work without PYTHONPATH=src
    from repro.obs.analyze import validate_trace
    from repro.obs.trace import Span

    spans = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                return [f"{path}:{line_no}: unparseable span: {exc}"]
    if not spans:
        return [f"{path}: no spans recorded"]
    return validate_trace(spans)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "stats_json", nargs="?", default=None,
        help="simulate --json output file",
    )
    parser.add_argument(
        "--trace", default=None, help="simulate --trace JSONL file to validate"
    )
    parser.add_argument(
        "--bench", default=None, help="tools/bench.py snapshot to validate"
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="checkpoint directory (one ckpt_<n> or a parent of several) "
        "whose header(s) to validate against the persist schema",
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="SimulationSpec file (JSON/TOML) to validate against the "
        "spec schema",
    )
    parser.add_argument(
        "--run-artifact",
        default=None,
        dest="run_artifact",
        help="run-artifact directory (runs/<run_id>, written with "
        "--artifacts) to validate against the artifact schema",
    )
    args = parser.parse_args(argv)
    if (
        args.stats_json is None
        and args.bench is None
        and args.checkpoint is None
        and args.spec is None
        and args.run_artifact is None
    ):
        parser.error(
            "give a stats_json file, --bench, --checkpoint, --spec, "
            "and/or --run-artifact"
        )

    errors: List[str] = []
    document = None
    if args.stats_json is not None:
        with open(args.stats_json) as handle:
            document = json.load(handle)
        errors += check_stats(document)
    if args.trace is not None:
        errors += check_trace(args.trace)
    bench_doc = None
    if args.bench is not None:
        with open(args.bench) as handle:
            bench_doc = json.load(handle)
        errors += [f"{args.bench}: {error}" for error in check_bench(bench_doc)]
    if args.checkpoint is not None:
        errors += check_checkpoint(args.checkpoint)
    if args.spec is not None:
        errors += check_spec(args.spec)
    if args.run_artifact is not None:
        errors += [
            f"{args.run_artifact}: {error}"
            for error in check_run_artifact(args.run_artifact)
        ]
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    if document is not None:
        n_spans = "-"
        if args.trace is not None:
            with open(args.trace) as handle:
                n_spans = sum(1 for line in handle if line.strip())
        print(
            f"OK: schema v{document['schema_version']}, "
            f"{document['completed_requests']} requests, {n_spans} spans"
        )
    if bench_doc is not None:
        print(
            f"OK: bench schema v{bench_doc['bench_schema_version']}, "
            f"{len(bench_doc['cases'])} case(s)"
        )
    if args.checkpoint is not None:
        print(f"OK: checkpoint header(s) valid under {args.checkpoint}")
    if args.spec is not None:
        print(f"OK: spec {args.spec} valid")
    if args.run_artifact is not None:
        print(f"OK: run artifact {args.run_artifact} valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
