"""Tests for redundant-VFY elimination (Section 4.1.1)."""

import pytest

from repro.core.vfy_skip import n_skip_per_state, paper_n_skip, total_skipped
from repro.nand.ispp import WLProgramProfile, default_state_intervals


@pytest.fixture
def profile():
    return WLProgramProfile(default_state_intervals())


class TestNSkip:
    def test_matches_paper_figure_8(self, profile):
        """P1 can skip 1 VFY, ..., P7 can skip 7 (Fig. 8(a))."""
        assert n_skip_per_state(profile) == (1, 2, 3, 4, 5, 6, 7)

    def test_total(self, profile):
        assert total_skipped(profile) == 28

    def test_guard_reduces_skips(self, profile):
        guarded = n_skip_per_state(profile, guard=1)
        assert guarded == (0, 1, 2, 3, 4, 5, 6)

    def test_skips_never_negative(self, profile):
        assert all(s >= 0 for s in n_skip_per_state(profile, guard=100))

    def test_slow_layer_skips_more(self, ispp):
        """Slower layers complete later, so more early VFYs are redundant."""
        fast = total_skipped(ispp.wl_profile(0.0))
        slow = total_skipped(ispp.wl_profile(1.0))
        assert slow > fast

    def test_higher_states_always_skip_at_least_as_many(self, ispp):
        for slowdown in (0.0, 0.5, 1.0):
            skips = n_skip_per_state(ispp.wl_profile(slowdown))
            assert list(skips) == sorted(skips)


class TestPaperFormula:
    def test_cross_check_with_absolute_indexing(self, profile):
        """The paper's phase-local N_skip formula agrees with the
        absolute-loop-index accounting."""
        for state in range(1, profile.n_states + 1):
            assert paper_n_skip(profile, state) == n_skip_per_state(profile)[
                state - 1
            ]

    def test_state_bounds(self, profile):
        with pytest.raises(ValueError):
            paper_n_skip(profile, 0)
        with pytest.raises(ValueError):
            paper_n_skip(profile, 8)
