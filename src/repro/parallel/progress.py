"""Live progress plumbing between running simulations and the shard pool.

A replay loop reports completions through ``sim.progress`` (installed by
:func:`repro.api.run_spec` when a *progress sink* is bound in the
current process).  Worker processes bind a sink that forwards payloads
over their result pipe as ``("progress", payload)`` messages; inline
(``jobs=1``) execution binds a sink that calls the caller's heartbeat
directly.  No sink bound (the default, e.g. a plain ``simulate``) means
zero overhead and zero behavior change -- the hook never schedules
events either way, so progress reporting cannot perturb a simulation.

Payloads are ``{"completed", "total", "sim_us"}``: the simulated-time
watermark plus ops completed.  Wall-clock ETA is computed by the
*receiving* side for display only, so nothing host-dependent crosses
the pipe and the message sequence for a given seed is deterministic.
"""

from __future__ import annotations

from typing import Callable, Optional

#: ~how many heartbeats one run emits (stride = total // PARTS)
PARTS = 16

_sink: Optional[Callable[[dict], None]] = None


def set_progress_sink(sink: Optional[Callable[[dict], None]]) -> None:
    """Bind (or clear, with ``None``) this process's progress sink."""
    global _sink
    _sink = sink


def get_progress_sink() -> Optional[Callable[[dict], None]]:
    return _sink


def make_progress_hook(
    sink: Callable[[dict], None], parts: int = PARTS
) -> Callable[[int, int, float], None]:
    """A ``sim.progress`` hook that forwards every ~``total/parts``-th
    completion (and always the last) to ``sink``.

    The stride depends only on the request count, so the emitted message
    sequence is a deterministic function of the run -- completion order,
    not wall clock, decides what gets sent.

    Runs with ``total <= parts`` emit only the final completion: the old
    ``max(1, ...)`` stride floor collapsed to 1 there, flooding the
    result pipe of a thousand-cell sweep with one message per request.
    The final payload is emitted exactly once even when ``total`` is a
    stride multiple.
    """

    final_sent = [False]

    def hook(completed: int, total: int, sim_us: float) -> None:
        if completed == total:
            if final_sent[0]:
                return
            final_sent[0] = True
            sink({"completed": completed, "total": total, "sim_us": sim_us})
            return
        if total <= parts:
            return
        stride = total // parts
        if completed % stride == 0:
            sink({"completed": completed, "total": total, "sim_us": sim_us})

    return hook
