"""Resumable sweep orchestration: manifest identity, per-shard result
caching, and interrupt survival."""

import os
import pickle

import pytest

from repro.parallel import ShardSpec, ShardsInterrupted
from repro.persist import (
    ManifestMismatch,
    load_manifest,
    run_shards_resumable,
    shard_result_path,
    write_manifest,
)

def _square(value, log_dir=None):
    if log_dir is not None:
        with open(os.path.join(log_dir, f"ran_{value}"), "w"):
            pass
    return value * value


def _fail(value):
    raise RuntimeError(f"shard {value} failed")


def _interrupt(value):
    raise KeyboardInterrupt


def _specs(n, log_dir=None, fn=_square):
    kwargs = {} if log_dir is None else {"log_dir": log_dir}
    return [
        ShardSpec(f"cell-{i}", fn, dict({"value": i}, **kwargs))
        for i in range(n)
    ]


class TestManifestFile:
    def test_write_and_load(self, tmp_path):
        write_manifest(str(tmp_path), ["a", "b"], base_seed=5)
        manifest = load_manifest(str(tmp_path))
        assert manifest["shards"] == ["a", "b"]
        assert manifest["base_seed"] == 5

    def test_load_missing_returns_none(self, tmp_path):
        assert load_manifest(str(tmp_path / "nope")) is None

    def test_result_path_is_collision_safe(self, tmp_path):
        # names differing only in sanitized characters must not collide
        a = shard_result_path(str(tmp_path), "cell a/b")
        b = shard_result_path(str(tmp_path), "cell a:b")
        assert a != b


class TestResumableRun:
    def test_fresh_run_matches_plain_and_saves(self, tmp_path):
        outcomes = run_shards_resumable(
            _specs(4), checkpoint_dir=str(tmp_path), base_seed=7
        )
        assert [o.result for o in outcomes] == [0, 1, 4, 9]
        assert all(not o.cached for o in outcomes)
        assert load_manifest(str(tmp_path))["shards"] == [
            "cell-0", "cell-1", "cell-2", "cell-3"
        ]
        for i in range(4):
            assert os.path.isfile(shard_result_path(str(tmp_path), f"cell-{i}"))

    def test_rerun_serves_everything_cached(self, tmp_path):
        log_dir = tmp_path / "log"
        log_dir.mkdir()
        specs = _specs(3, log_dir=str(log_dir))
        run_shards_resumable(specs, checkpoint_dir=str(tmp_path), base_seed=7)
        assert len(os.listdir(log_dir)) == 3
        outcomes = run_shards_resumable(
            specs, checkpoint_dir=str(tmp_path), base_seed=7
        )
        assert all(o.cached for o in outcomes)
        assert [o.result for o in outcomes] == [0, 1, 4]
        # no shard function actually re-ran
        assert len(os.listdir(log_dir)) == 3

    def test_failed_shards_are_not_saved(self, tmp_path):
        specs = _specs(2) + [ShardSpec("cell-bad", _fail, {"value": 2})]
        outcomes = run_shards_resumable(
            specs, checkpoint_dir=str(tmp_path), base_seed=7
        )
        assert [o.ok for o in outcomes] == [True, True, False]
        assert not os.path.isfile(
            shard_result_path(str(tmp_path), "cell-bad")
        )
        # the rerun retries the failed shard (and only it runs again)
        rerun = run_shards_resumable(
            specs, checkpoint_dir=str(tmp_path), base_seed=7
        )
        assert [o.cached for o in rerun] == [True, True, False]

    def test_mismatched_shards_raise(self, tmp_path):
        run_shards_resumable(
            _specs(2), checkpoint_dir=str(tmp_path), base_seed=7
        )
        with pytest.raises(ManifestMismatch):
            run_shards_resumable(
                _specs(3), checkpoint_dir=str(tmp_path), base_seed=7
            )

    def test_mismatched_base_seed_raises(self, tmp_path):
        run_shards_resumable(
            _specs(2), checkpoint_dir=str(tmp_path), base_seed=7
        )
        with pytest.raises(ManifestMismatch):
            run_shards_resumable(
                _specs(2), checkpoint_dir=str(tmp_path), base_seed=8
            )

    def test_no_dir_is_plain_run(self):
        outcomes = run_shards_resumable(_specs(3), checkpoint_dir=None)
        assert [o.result for o in outcomes] == [0, 1, 4]

    def test_interrupt_preserves_saved_shards(self, tmp_path):
        specs = _specs(2) + [ShardSpec("cell-int", _interrupt, {"value": 9})]
        with pytest.raises(ShardsInterrupted) as excinfo:
            run_shards_resumable(
                specs, checkpoint_dir=str(tmp_path), base_seed=7
            )
        assert [o.name for o in excinfo.value.outcomes] == [
            "cell-0", "cell-1"
        ]
        # the completed shards survived on disk; the rerun picks them up
        # cached and only re-attempts the interrupted one
        specs_ok = _specs(2) + [ShardSpec("cell-int", _square, {"value": 9})]
        write_manifest(
            str(tmp_path), [s.name for s in specs_ok], base_seed=7
        )
        rerun = run_shards_resumable(
            specs_ok, checkpoint_dir=str(tmp_path), base_seed=7
        )
        assert [o.cached for o in rerun] == [True, True, False]
        assert rerun[2].result == 81

    def test_interrupt_merges_cached_outcomes(self, tmp_path):
        # pre-seed one cached shard, then interrupt on the next rerun
        run_shards_resumable(
            _specs(1), checkpoint_dir=str(tmp_path), base_seed=7
        )
        specs = _specs(1) + [ShardSpec("cell-int", _interrupt, {"value": 9})]
        write_manifest(str(tmp_path), [s.name for s in specs], base_seed=7)
        with pytest.raises(ShardsInterrupted) as excinfo:
            run_shards_resumable(
                specs, checkpoint_dir=str(tmp_path), base_seed=7
            )
        outcomes = excinfo.value.outcomes
        assert [o.name for o in outcomes] == ["cell-0"]
        assert outcomes[0].cached


class TestOutcomePickleRoundtrip:
    def test_saved_outcome_keeps_result(self, tmp_path):
        run_shards_resumable(
            _specs(1), checkpoint_dir=str(tmp_path), base_seed=7
        )
        with open(shard_result_path(str(tmp_path), "cell-0"), "rb") as fh:
            outcome = pickle.load(fh)
        assert outcome.ok and outcome.result == 0 and not outcome.cached
