"""vertFTL: the inter-layer-variability baseline (after Hung et al. [13]).

vertFTL represents the existing state of the art the paper compares
against: it reduces MaxLoop by lowering ``V_final`` using a *static,
offline* per-layer characterization.  Because the offline table must stay
safe under the worst operating condition over the device's whole lifetime
(end-of-life P/E count, longest retention, worst block), the usable
margin is small -- the paper quotes about 130 mV and an ~8 % program
latency improvement -- and only ``V_final`` is adjusted (``V_start`` and
the verify schedule are untouched).  No read-side optimization exists.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.maxloop import vert_ftl_static_margin
from repro.core.wam import Allocation
from repro.ftl.pageftl import PageFTL
from repro.nand.ispp import (
    DV_ISPP_DEFAULT_MV,
    ProgramParams,
    V_FINAL_DEFAULT_MV,
    V_START_DEFAULT_MV,
)
from repro.ssd.config import SSDConfig


class VertFTL(PageFTL):
    """Offline-conservative V_final-only MaxLoop reduction."""

    name = "vertFTL"

    def __init__(
        self,
        config: SSDConfig,
        controller,
        static_margin_mv: float = None,
    ) -> None:
        super().__init__(config, controller)
        if static_margin_mv is None:
            static_margin_mv = vert_ftl_static_margin()
        if static_margin_mv < 0:
            raise ValueError("static_margin_mv must be >= 0")
        # quantize to whole ISPP steps, as the device applies it
        steps = int(round(static_margin_mv / DV_ISPP_DEFAULT_MV))
        self._margin_mv = steps * DV_ISPP_DEFAULT_MV
        self._params = ProgramParams(
            v_start_mv=V_START_DEFAULT_MV,
            v_final_mv=V_FINAL_DEFAULT_MV - self._margin_mv,
        )

    @property
    def static_margin_mv(self) -> int:
        return self._margin_mv

    def program_params(
        self, chip_id: int, allocation: Allocation
    ) -> Tuple[ProgramParams, float]:
        return self._params, float(self._margin_mv)
