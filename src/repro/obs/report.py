"""Deterministic dashboards over run artifacts.

:func:`render_report` turns a loaded run artifact (see
:func:`repro.obs.artifact.load_artifact`) into an ASCII dashboard:
header summary, latency CDFs, time-series charts of the most
interesting telemetry keys, top-K tail exemplars with their span
breakdowns, and first-to-last telemetry deltas.  Rendering is a pure
function of the artifact files -- no wall clock, no environment -- so
the same artifact always renders to the same bytes (asserted by the
test suite, and what makes ``repro-ssd report`` output diffable).

:func:`render_html` wraps the same sections into a single-file static
page (monospace ``<pre>`` blocks; nothing external to load).
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Sequence

from repro.analysis.ascii_plot import cdf_chart, series_chart
from repro.obs.timeseries import expand_records

#: substrings that promote a telemetry key into the charted selection,
#: most interesting first
PREFERRED_SERIES = (
    "free_blocks",
    "buffer_utilization",
    "gc",
    "retry",
    "ort",
    "chip_busy",
)

#: how many telemetry keys to chart / list in the delta table
MAX_SERIES = 4
MAX_DELTA_ROWS = 20


def _fmt(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _header(artifact: dict) -> List[str]:
    manifest = artifact["manifest"]
    result = artifact["result"] or {}
    lines = [
        f"run {manifest['run_id']}  "
        f"ftl={manifest.get('ftl')}  workload={manifest.get('workload')}  "
        f"seed={manifest.get('seed')}",
        f"completed: {result.get('completed_requests')} request(s) in "
        f"{_fmt(result.get('duration_us'))} us  "
        f"({_fmt(result.get('iops'))} IOPS)",
    ]
    for kind in ("read", "write"):
        block = result.get(f"{kind}_latency")
        if not block or not block.get("count"):
            continue
        lines.append(
            f"{kind:>5}: n={block['count']}  mean={_fmt(block['mean_us'])}  "
            f"p50={_fmt(block['p50_us'])}  p99={_fmt(block['p99_us'])}  "
            f"p999={_fmt(block['p999_us'])}  max={_fmt(block['max_us'])} us"
        )
    return lines


def _latency_section(artifact: dict) -> List[str]:
    latency = artifact.get("latency") or {}
    samples: Dict[str, Sequence[float]] = {}
    for kind in ("read", "write"):
        table = latency.get(kind)
        if table and table.get("count"):
            samples[kind] = table["quantiles_us"]
    if not samples:
        return []
    return ["", "latency CDF (quantile grid, us)", cdf_chart(samples)]


def _select_series(windows: List[Dict[str, float]], limit: int) -> List[str]:
    """The most interesting telemetry keys: preferred-substring matches
    first, then alphabetical; constant series are never interesting."""
    if not windows:
        return []
    scored = []
    for key in sorted(windows[-1]):
        values = {w[key] for w in windows if key in w}
        if len(values) <= 1:
            continue
        rank = len(PREFERRED_SERIES)
        for position, substring in enumerate(PREFERRED_SERIES):
            if substring in key:
                rank = position
                break
        scored.append((rank, key))
    scored.sort()
    return [key for _, key in scored[:limit]]


def _timeseries_section(artifact: dict) -> List[str]:
    records = artifact.get("timeseries")
    if not records:
        return []
    times, windows = expand_records(records)
    keys = _select_series(windows, MAX_SERIES)
    if not keys:
        return ["", f"time series: {len(records)} window(s), all keys constant"]
    lines = ["", f"time series ({len(records)} window(s))"]
    for key in keys:
        values = []
        last = 0.0
        for window in windows:
            last = window.get(key, last)
            values.append(last)
        lines.append("")
        lines.append(key)
        lines.append(series_chart(times, {"value": values}, height=6))
    return lines


def _stage_breakdown(stages: Dict[str, float], top: int = 4) -> str:
    ranked = sorted(stages.items(), key=lambda item: (-item[1], item[0]))[:top]
    return " ".join(f"{stage}={_fmt(duration)}" for stage, duration in ranked)


def _exemplar_section(artifact: dict) -> List[str]:
    document = artifact.get("exemplars")
    if not document:
        return []
    lines: List[str] = []
    for kind in sorted(document.get("kinds", {})):
        entry = document["kinds"][kind]
        slowest = entry.get("slowest", [])
        if not slowest:
            continue
        lines += ["", f"slowest {kind} exemplars ({entry['count']} total)"]
        links = document.get("tail_links", {}).get(kind, {})
        cuts = links.get("thresholds")
        if cuts:
            lines.append(
                f"  tail: p90={_fmt(cuts['p90_us'])}  "
                f"p99={_fmt(cuts['p99_us'])}  p999={_fmt(cuts['p999_us'])}  "
                f"max={_fmt(cuts['max_us'])} us"
            )
        for record in slowest:
            flags = []
            if record.get("retries"):
                flags.append(f"retries={record['retries']}")
            if record.get("gc_collision"):
                flags.append("gc-collision")
            if record.get("layers"):
                layers = ",".join(str(layer) for layer in record["layers"])
                flags.append(f"layers={layers}")
            flag_text = f"  [{' '.join(flags)}]" if flags else ""
            lines.append(
                f"  #{record['request']}: {_fmt(record['latency_us'])} us  "
                f"{_stage_breakdown(record.get('stages_us', {}))}{flag_text}"
            )
        buckets = links.get("buckets")
        if buckets:
            parts = [
                f"{name}: {len(buckets[name])}"
                for name in ("p90-p99", "p99-p999", "p999-max")
                if name in buckets
            ]
            lines.append(f"  tail buckets -> {'  '.join(parts)}")
    return lines


def _delta_section(artifact: dict) -> List[str]:
    records = artifact.get("timeseries")
    if not records or len(records) < 2:
        return []
    _, windows = expand_records(records)
    first, last = windows[0], windows[-1]
    rows = []
    for key in sorted(last):
        before = first.get(key, 0.0)
        after = last[key]
        if before != after:
            rows.append((abs(after - before), key, before, after))
    if not rows:
        return []
    rows.sort(key=lambda row: (-row[0], row[1]))
    shown = rows[:MAX_DELTA_ROWS]
    width = max(len(key) for _, key, _, _ in shown)
    lines = ["", f"telemetry deltas (first -> last window, top {len(shown)})"]
    for _, key, before, after in shown:
        lines.append(f"  {key:<{width}}  {_fmt(before)} -> {_fmt(after)}")
    if len(rows) > len(shown):
        lines.append(f"  ... {len(rows) - len(shown)} more changed key(s)")
    return lines


def _extras_section(artifact: dict) -> List[str]:
    lines = []
    check = artifact.get("check")
    if check is not None:
        violations = check.get("violations")
        count = len(violations) if isinstance(violations, list) else violations
        lines.append(
            f"check: level={check.get('level')}  violations={_fmt(count)}"
        )
    profile = artifact.get("profile")
    if profile is not None:
        sections = profile.get("sections_s", {})
        top = sorted(sections.items(), key=lambda item: (-item[1], item[0]))[:3]
        rendered = "  ".join(f"{name}={share:.3f}s" for name, share in top)
        lines.append(f"profile: total={_fmt(profile.get('total_s'))}s  {rendered}")
    return [""] + lines if lines else []


def render_report(artifact: dict) -> str:
    """ASCII dashboard for one loaded run artifact (deterministic)."""
    lines: List[str] = []
    lines += _header(artifact)
    lines += _latency_section(artifact)
    lines += _timeseries_section(artifact)
    lines += _exemplar_section(artifact)
    lines += _delta_section(artifact)
    lines += _extras_section(artifact)
    return "\n".join(lines)


def render_html(artifact: dict, report: Optional[str] = None) -> str:
    """Single-file static HTML page wrapping the ASCII dashboard."""
    if report is None:
        report = render_report(artifact)
    manifest = artifact["manifest"]
    title = f"run {manifest['run_id']}"
    return (
        "<!DOCTYPE html>\n"
        "<html>\n<head>\n"
        '<meta charset="utf-8">\n'
        f"<title>{_html.escape(title)}</title>\n"
        "<style>\n"
        "body { background: #111; color: #ddd; font-family: monospace; "
        "margin: 2em; }\n"
        "pre { line-height: 1.25; }\n"
        "h1 { font-size: 1.2em; }\n"
        "</style>\n"
        "</head>\n<body>\n"
        f"<h1>{_html.escape(title)}</h1>\n"
        f"<pre>{_html.escape(report)}</pre>\n"
        "</body>\n</html>\n"
    )
