"""Parallel experiment execution: shard, isolate, merge, reproduce.

The package splits an experiment batch (benchmark cases, fault
campaigns, parameter sweeps) into named shards, runs them across worker
processes with per-shard crash isolation, and merges the results into
exactly what a serial run would have produced:

- :mod:`~repro.parallel.seeds` -- the fixed seed-derivation rule
  (``derive_seed``): a shard's seed depends only on the base seed and
  the shard's name.
- :mod:`~repro.parallel.runner` -- ``run_shards``: one process per
  in-flight shard, a dying worker yields a failed outcome instead of
  killing the batch, outcomes always return in input order.
- :mod:`~repro.parallel.merge` -- ``merge_snapshots``: fold per-shard
  telemetry registries into one combined snapshot.
- :mod:`~repro.parallel.experiments` -- ``RunSpec``: a picklable
  description of one simulation run for :func:`repro.api.run_many`.
- :mod:`~repro.parallel.progress` -- the process-wide live-progress
  sink: running shards stream ``completed``/``total``/``sim_us``
  heartbeats back over their result pipes for the CLI status line.

Together these give the reproducibility contract stated in the docs:
the merged output of a sharded run is bit-for-bit identical for any
worker count and any completion order.
"""

from repro.parallel.experiments import (
    RunSpec,
    execute_run_spec,
    resolve_seed,
    specs_to_shards,
)
from repro.parallel.merge import merge_snapshots
from repro.parallel.progress import (
    get_progress_sink,
    make_progress_hook,
    set_progress_sink,
)
from repro.parallel.runner import (
    ShardOutcome,
    ShardSpec,
    ShardsInterrupted,
    run_shards,
)
from repro.parallel.seeds import derive_seed

__all__ = [
    "RunSpec",
    "ShardOutcome",
    "ShardSpec",
    "ShardsInterrupted",
    "derive_seed",
    "execute_run_spec",
    "get_progress_sink",
    "make_progress_hook",
    "merge_snapshots",
    "resolve_seed",
    "run_shards",
    "set_progress_sink",
    "specs_to_shards",
]
