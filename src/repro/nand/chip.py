"""The 3D NAND chip: operations, state, and the ONFI-style interface.

A :class:`NandChip` ties the device-model components together:

- :class:`~repro.nand.reliability.ReliabilityModel` supplies the BER
  surface (intra-layer similarity, inter-layer variability, aging);
- :class:`~repro.nand.ispp.IsppEngine` executes program operations and
  reports the monitored per-state loop intervals (the values a controller
  reads back through Get-Features after a program -- Section 4.1.4 notes
  vendors expose these via the low-level NAND interface);
- :class:`~repro.nand.read_retry.ReadRetryModel` decides how many retries
  a read needs given the starting offset hint;
- :class:`~repro.nand.ecc.EccEngine` decides correctability.

The chip enforces the device-level legality rules: erase-before-reprogram
per WL, in-range addresses, optional endurance limit.  WLs are programmed
*one-shot* (all TLC pages of the WL at once), matching how modern 3D TLC
parts program and how the paper's WL-granular allocation (the WAM) works.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # annotation only -- repro.faults imports repro.nand
    from repro.faults.injector import FaultInjector
from repro.nand.ecc import EccEngine
from repro.nand.errors import (
    AddressError,
    EraseFailError,
    ProgramFailError,
    ProgramOrderError,
    UnprogrammedReadError,
    WearOutError,
)
from repro.nand.geometry import BlockGeometry
from repro.nand.ispp import IsppEngine, IsppResult, ProgramParams, WLProgramProfile
from repro.nand.read_retry import MAX_OFFSET, ReadParams, ReadRetryModel
from repro.nand.reliability import (
    AgingState,
    ReliabilityModel,
    hash_state,
    hash_unit,
    hash_unit_tail,
)
from repro.nand.tables import FastPathTables
from repro.nand.timing import NandTiming

#: how many offset levels a *hint-started* retry sweep searches before
#: giving up (only enforced under fault injection; a nominal-start sweep
#: from offset 0 always searches the full range).  Natural drift between
#: a learned hint and the optimum stays within +/-2 (one transient on
#: each side), so only injected skews (>= 3 steps) can exhaust it.
_HINT_SWEEP_BUDGET = 3


@dataclass(frozen=True)
class ProgramResult:
    """Outcome of a one-shot WL program operation."""

    #: total latency including parameter-setting overhead (us)
    t_prog_us: float
    #: detailed ISPP outcome (loops, verifies, penalties)
    ispp: IsppResult
    #: the per-state loop intervals observable via Get-Features -- this is
    #: what the OPM records from a leader-WL program
    monitored: WLProgramProfile
    #: BER measured immediately after the program (no retention); the
    #: safety check of Section 4.1.4 compares this across WLs of a layer
    post_program_ber: float
    #: BER between the E state and the P1 state, monitored during the
    #: program -- the health predictor behind the spare margin S_M
    #: (Section 4.1.2)
    ber_ep1: float
    #: environmental loop shift that affected this program (0 = none)
    env_shift: int

    @property
    def clean(self) -> bool:
        return self.ispp.clean and self.env_shift == 0


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a page read operation."""

    #: array-sense latency including retries (us); bus transfer is the
    #: controller's job
    t_read_us: float
    #: number of read retries performed
    num_retry: int
    #: offset level that finally decoded -- the value a PS-aware
    #: controller stores back into its ORT
    final_offset: int
    #: raw bit error rate seen by the ECC engine
    ber: float
    #: whether the page decoded within ECC capability
    correctable: bool
    #: stored data tag, when tag storage is enabled
    data: Optional[object]
    #: portion of ``t_read_us`` spent on retry sense steps (0 when the
    #: first sense decoded) -- the tracer's queueing/NAND/retry split
    t_retry_us: float = 0.0


class NandChip:
    """One 3D TLC NAND chip with ``n_blocks`` blocks.

    Parameters
    ----------
    chip_id:
        Global chip id; feeds the deterministic per-location hashes so
        chips differ from each other.
    n_blocks, geometry:
        Chip shape.
    env_shift_prob:
        Probability that a program operation experiences a sudden
        operating-condition change (Section 4.1.4), shifting its loop
        profile and invalidating previously monitored parameters.
    store_tags:
        Keep per-page data tags for functional read-back checks.  Costs
        memory on long simulations; benchmarks disable it.
    erase_limit:
        Optional hard endurance cap; exceeding it raises
        :class:`WearOutError`.
    read_disturb_per_read:
        Optional read-disturb modelling: each read of a block weakly
        disturbs its other pages, adding this BER fraction per read (a
        typical figure is ~1e-6 of the base BER per read, i.e. hundreds
        of thousands of reads to matter).  Disabled (0.0) by default; an
        FTL can watch :meth:`block_read_count` and refresh hot blocks.
    fault_injector:
        Optional seeded :class:`~repro.faults.injector.FaultInjector`.
        When attached, programs and erases can report failure statuses
        (:class:`ProgramFailError` / :class:`EraseFailError`), reads can
        see transient BER spikes or stale-offset sweep failures, and any
        operation can hit stuck-die latency.  Without it (the default)
        the chip behaves bit-for-bit like the fault-free model.
    fast_path:
        Serve the program/read hot path from precomputed per-(block,
        erase-epoch) reliability tables (:mod:`repro.nand.tables`).
        The tables are bitwise identical to the scalar model, so this is
        purely a wall-clock switch.  ``None`` (the default) follows the
        ``REPRO_FAST_PATH`` environment variable: set to ``0`` to force
        the scalar path (equivalence smokes); unset or anything else
        enables the tables.
    """

    def __init__(
        self,
        chip_id: int = 0,
        n_blocks: int = 428,
        geometry: BlockGeometry = BlockGeometry(),
        reliability: Optional[ReliabilityModel] = None,
        timing: NandTiming = NandTiming(),
        ispp: Optional[IsppEngine] = None,
        retry_model: Optional[ReadRetryModel] = None,
        ecc: Optional[EccEngine] = None,
        env_shift_prob: float = 2e-4,
        store_tags: bool = True,
        erase_limit: Optional[int] = None,
        read_disturb_per_read: float = 0.0,
        fault_injector: Optional[FaultInjector] = None,
        store_oob: bool = False,
        fast_path: Optional[bool] = None,
    ) -> None:
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        if not 0.0 <= env_shift_prob <= 1.0:
            raise ValueError("env_shift_prob must be in [0, 1]")
        self.chip_id = chip_id
        self.n_blocks = n_blocks
        self.geometry = geometry
        self.reliability = reliability or ReliabilityModel(geometry)
        self.timing = timing
        self.ispp = ispp or IsppEngine(timing)
        self.retry_model = retry_model or ReadRetryModel(self.reliability)
        self.ecc = ecc or EccEngine()
        self.env_shift_prob = env_shift_prob
        self.store_tags = store_tags
        self.erase_limit = erase_limit
        if read_disturb_per_read < 0:
            raise ValueError("read_disturb_per_read must be >= 0")
        self.read_disturb_per_read = read_disturb_per_read
        self.faults = fault_injector
        #: keep per-page OOB metadata ``(lpn, seq)`` alongside the data,
        #: the way a real FTL stamps spare-area bytes; the SPOR recovery
        #: path rebuilds the L2P mapping from it (see repro.persist.spor)
        self.store_oob = store_oob
        self._op_nonce = 0
        # cumulative operation counters (observability only; never read
        # by the simulation itself)
        self.reads_done = 0
        self.programs_done = 0
        self.erases_done = 0
        #: optional :class:`~repro.obs.device.ChipTelemetry` recording
        #: hook, installed by ``attach_device_telemetry``; recording
        #: never mutates chip state, so simulated results are identical
        #: with or without it
        self.telemetry = None

        # per-(block, WL) mutable state lives in plain Python lists: the
        # program/read hot paths touch single scalars, where list access
        # is several times cheaper than numpy scalar indexing.  The
        # checkpoint wire format stays numpy (see state_dict).
        wls = geometry.wls_per_block
        self._erase_counts = [0] * n_blocks
        self._programmed = [[False] * wls for _ in range(n_blocks)]
        # incrementally maintained row sums of _programmed, so the FTL's
        # per-program block-full check is O(1) instead of a row scan
        self._programmed_counts = [0] * n_blocks
        self._penalty = [[1.0] * wls for _ in range(n_blocks)]
        # program-instance variation: each program operation lands the
        # V_th distributions slightly differently (sub-percent), which is
        # what the paper's Fig. 13 measures as RTN-scale order noise
        self._prog_noise = [[1.0] * wls for _ in range(n_blocks)]
        self._block_reads = [0] * n_blocks
        self._baseline = AgingState()
        self._read_nonce = 0
        self._program_nonce = 0
        self._tags: Dict[Tuple[int, int, int], object] = {}
        #: (block, wl_index, page) -> (lpn, seq) spare-area metadata
        self._oob: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        self._features: Dict[int, Tuple[int, ...]] = {}
        # allocation caches for the per-operation hot path: AgingState is
        # frozen, so one instance per (block, erase-epoch) can be shared
        # by every read of the block instead of being rebuilt per page
        # read.  Invalidated on erase and on baseline changes; bounded by
        # n_blocks (and by distinct dynamic P/E values for the
        # zero-retention states the program path uses).
        self._block_aging_cache: Dict[int, AgingState] = {}
        self._fresh_aging_cache: Dict[int, AgingState] = {}
        if fast_path is None:
            fast_path = os.environ.get("REPRO_FAST_PATH", "1") != "0"
        self._fast = FastPathTables(self) if fast_path else None
        # premixed hash-chain prefixes of the two per-program draws
        # (environment shift and program-instance noise): the leading
        # (seed, tag, chip_id) keys never change, so folding them per
        # operation is wasted work
        seed = self.reliability.seed
        self._env_hash_state = hash_state(seed, 0xE47, chip_id)
        self._prog_noise_hash_state = hash_state(seed, 0x9619, chip_id)

    # ------------------------------------------------------------------
    # aging control (experiment pre-conditioning)
    # ------------------------------------------------------------------

    @property
    def baseline_aging(self) -> AgingState:
        return self._baseline

    def set_baseline_aging(self, aging: AgingState) -> None:
        """Pre-condition the chip (e.g. "2 K P/E with 1-year retention")."""
        self._baseline = aging
        self._block_aging_cache.clear()
        self._fresh_aging_cache.clear()
        if self._fast is not None:
            self._fast.invalidate()

    def block_aging(self, block: int) -> AgingState:
        """Effective aging of one block: baseline plus dynamic erases."""
        self._check_block(block)
        aging = self._block_aging_cache.get(block)
        if aging is None:
            aging = AgingState(
                pe_cycles=self._baseline.pe_cycles + self._erase_counts[block],
                retention_months=self._baseline.retention_months,
            )
            self._block_aging_cache[block] = aging
        return aging

    def _fresh_aging(self, pe_cycles: int) -> AgingState:
        """Shared zero-retention AgingState for a dynamic P/E count (the
        immediate post-program read-back condition)."""
        aging = self._fresh_aging_cache.get(pe_cycles)
        if aging is None:
            aging = AgingState(pe_cycles, 0.0)
            self._fresh_aging_cache[pe_cycles] = aging
        return aging

    def block_pe(self, block: int) -> int:
        self._check_block(block)
        return self._erase_counts[block] + self._baseline.pe_cycles

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def erase_block(self, block: int) -> float:
        """Erase a block; returns the erase latency in microseconds.

        Raises :class:`WearOutError` past the endurance limit and, under
        fault injection, :class:`EraseFailError` for grown bad blocks --
        in both cases the block state is left untouched.
        """
        self._check_block(block)
        if self.erase_limit is not None and self.block_pe(block) >= self.erase_limit:
            raise WearOutError(f"block {block} exceeded {self.erase_limit} P/E cycles")
        if self.faults is not None and self.faults.erase_fails(
            self.chip_id, block, self.n_blocks, self._erase_counts[block]
        ):
            raise EraseFailError(
                f"chip {self.chip_id} block {block} erase failed "
                "(grown bad block)",
                t_us=self._op_latency(self.timing.t_erase_us),
            )
        self._erase_counts[block] += 1
        self._block_aging_cache.pop(block, None)
        if self._fast is not None:
            self._fast.invalidate_block(block)
        self.erases_done += 1
        if self.telemetry is not None:
            self.telemetry.record_erase()
        wls = self.geometry.wls_per_block
        self._programmed[block] = [False] * wls
        self._programmed_counts[block] = 0
        self._penalty[block] = [1.0] * wls
        self._prog_noise[block] = [1.0] * wls
        self._block_reads[block] = 0
        if self._tags:
            stale = [key for key in self._tags if key[0] == block]
            for key in stale:
                del self._tags[key]
        if self._oob:
            stale = [key for key in self._oob if key[0] == block]
            for key in stale:
                del self._oob[key]
        return self._op_latency(self.timing.t_erase_us)

    def program_wl(
        self,
        block: int,
        layer: int,
        wl: int,
        params: Optional[ProgramParams] = None,
        data: Optional[Sequence[object]] = None,
        oob: Optional[Sequence[Optional[Tuple[int, int]]]] = None,
    ) -> ProgramResult:
        """One-shot program of all pages of a WL.

        ``data`` optionally supplies one tag per page of the WL (TLC: 3);
        tags are returned by subsequent reads when tag storage is on.
        ``oob`` optionally supplies one ``(lpn, seq)`` spare-area record
        per page (``None`` entries for pad pages); stored only when
        ``store_oob`` is enabled, and, like data, only on program success.
        """
        geometry = self.geometry
        geometry.check_wl(layer, wl)
        self._check_block(block)
        # check_wl just validated (layer, wl); flatten inline rather than
        # paying geometry.wl_index's second validation pass
        wl_index = layer * geometry.wls_per_layer + wl
        if self._programmed[block][wl_index]:
            raise ProgramOrderError(
                f"WL (block={block}, layer={layer}, wl={wl}) already programmed"
            )
        if data is not None and len(data) != self.geometry.pages_per_wl:
            raise ValueError(
                f"data must supply {self.geometry.pages_per_wl} page tags"
            )
        if oob is not None and len(oob) != self.geometry.pages_per_wl:
            raise ValueError(
                f"oob must supply {self.geometry.pages_per_wl} page records"
            )
        if params is None:
            params = ProgramParams.default(self.ispp.n_states)

        env_shift = self._draw_env_shift(block, layer, wl)
        slowdown = self.reliability.program_slowdown(self.chip_id, block, layer)
        profile = self.ispp.wl_profile(slowdown, env_shift)
        ispp_result = self.ispp.simulate(profile, params)

        if self.faults is not None and self.faults.program_fails(
            self.chip_id, block, wl_index, self._program_nonce
        ):
            # program-status FAIL: the WL holds indeterminate data.  It
            # stays "programmed" (reprogramming without an erase remains
            # illegal) with a poisoned BER so any stray read of it is
            # uncorrectable; no tags are stored.
            self._programmed[block][wl_index] = True
            self._programmed_counts[block] += 1
            self._penalty[block][wl_index] = 1e6
            raise ProgramFailError(
                f"chip {self.chip_id} WL (block={block}, layer={layer}, "
                f"wl={wl}) program failed",
                t_us=self._op_latency(ispp_result.t_prog_us),
            )

        self._programmed[block][wl_index] = True
        self._programmed_counts[block] += 1
        self.programs_done += 1
        self._penalty[block][wl_index] = ispp_result.ber_penalty
        noise_u = hash_unit_tail(
            self._prog_noise_hash_state, block, wl_index, self._program_nonce
        )
        self._prog_noise[block][wl_index] = 1.0 + 0.01 * (2.0 * noise_u - 1.0)
        if self.store_tags and data is not None:
            for page, tag in enumerate(data):
                self._tags[(block, wl_index, page)] = tag
        if self.store_oob and oob is not None:
            for page, record in enumerate(oob):
                if record is not None:
                    self._oob[(block, wl_index, page)] = record

        if self._fast is not None:
            tables = self._fast.block(block)
            # immediate read-back BER: no retention yet, current block P/E
            post_ber = tables.wl_ber_fresh[layer][wl] * ispp_result.ber_penalty
            # E<->P1 health indicator under the block's effective aging
            ber_ep1 = tables.ep1[layer][wl]
        else:
            # immediate read-back BER: no retention yet, current block P/E
            aging_now = self._fresh_aging(self.block_pe(block))
            post_ber = (
                self.reliability.wl_ber(self.chip_id, block, layer, wl, aging_now)
                * ispp_result.ber_penalty
            )
            # E<->P1 health indicator must reflect how the *stored* data
            # will age, so it is evaluated under the block's effective
            # aging state
            ber_ep1 = self.reliability.ber_ep1(
                self.chip_id, block, layer, wl, self.block_aging(block)
            )
        t_prog = ispp_result.t_prog_us
        if params.window_squeeze_mv != 0 or any(
            start > 1 for start in params.verify_plan.start_loops
        ):
            t_prog += self.timing.t_param_set_us
        t_prog = self._op_latency(t_prog)
        if self.telemetry is not None:
            self.telemetry.record_program(layer, t_prog)
        return ProgramResult(
            t_prog_us=t_prog,
            ispp=ispp_result,
            monitored=ispp_result.monitored,
            post_program_ber=post_ber,
            ber_ep1=ber_ep1,
            env_shift=env_shift,
        )

    def peek_tag(self, block: int, layer: int, wl: int, page: int) -> object:
        """Side-effect-free tag lookup (the checker's final-state digest).

        Unlike :meth:`read_page` this mutates nothing -- no read counter,
        no nonce, no disturb accumulation, no telemetry -- so inspecting
        the final state cannot perturb a simulation or its determinism.
        """
        self.geometry.check_page(layer, wl, page)
        self._check_block(block)
        wl_index = self.geometry.wl_index(layer, wl)
        return self._tags.get((block, wl_index, page))

    def peek_oob(
        self, block: int, layer: int, wl: int, page: int
    ) -> Optional[Tuple[int, int]]:
        """Side-effect-free spare-area lookup: ``(lpn, seq)`` or None."""
        self.geometry.check_page(layer, wl, page)
        self._check_block(block)
        wl_index = self.geometry.wl_index(layer, wl)
        return self._oob.get((block, wl_index, page))

    def iter_oob(self):
        """Iterate stored OOB records in deterministic address order.

        Yields ``((block, wl_index, page), (lpn, seq))`` -- the SPOR
        recovery scan.  Sorted so the rebuild order (and any tie-break
        it applies) cannot depend on dict insertion history.
        """
        for key in sorted(self._oob):
            yield key, self._oob[key]

    def read_page(
        self,
        block: int,
        layer: int,
        wl: int,
        page: int,
        params: ReadParams = ReadParams(),
    ) -> ReadResult:
        """Read one page of a programmed WL."""
        geometry = self.geometry
        geometry.check_page(layer, wl, page)
        self._check_block(block)
        # check_page just validated the address; flatten inline rather
        # than paying geometry.wl_index's second validation pass
        wl_index = layer * geometry.wls_per_layer + wl
        if not self._programmed[block][wl_index]:
            raise UnprogrammedReadError(
                f"page (block={block}, layer={layer}, wl={wl}, page={page}) "
                "was never programmed"
            )
        aging = self.block_aging(block)
        if self._fast is not None:
            tables = self._fast.block(block)
            ber = (
                tables.wl_ber[layer][wl]
                * self._penalty[block][wl_index]
                * self._prog_noise[block][wl_index]
            )
        else:
            ber = (
                self.reliability.wl_ber(self.chip_id, block, layer, wl, aging)
                * self._penalty[block][wl_index]
                * self._prog_noise[block][wl_index]
            )
        if self.read_disturb_per_read:
            disturb = 1.0 + self.read_disturb_per_read * self._block_reads[block]
            ber *= disturb
        self._block_reads[block] += 1
        if self._fast is not None:
            optimal = self.retry_model.transient_optimal(
                self.chip_id, block, layer, tables.stable_opt[layer], aging,
                self._read_nonce,
            )
        else:
            optimal = self.retry_model.read_optimal(
                self.chip_id, block, layer, aging, self._read_nonce
            )
        self._read_nonce += 1
        sweep_failed = False
        if self.faults is not None:
            ber *= self.faults.ber_multiplier(self.chip_id, block, self._read_nonce)
            skew = self.faults.ort_skew(
                self.chip_id,
                block,
                layer,
                self._erase_counts[block],
                self._read_nonce,
            )
            if skew:
                # the h-layer's optimum jumped away from anything a
                # previous read could have learned; a hint-started
                # bounded sweep that lands far from the new optimum
                # gives up, while a nominal-start (offset 0) full sweep
                # still finds it -- the conservative-fallback contract
                optimal = max(0, min(MAX_OFFSET, optimal + skew))
                if (
                    params.offset_hint != 0
                    and abs(optimal - params.offset_hint) >= _HINT_SWEEP_BUDGET
                ):
                    sweep_failed = True
        if sweep_failed:
            num_retry = MAX_OFFSET
            correctable = False
        else:
            num_retry = self.retry_model.retries_needed(params.offset_hint, optimal)
            correctable = self.ecc.correctable(ber)
        tag = self._tags.get((block, wl_index, page)) if self.store_tags else None
        self.reads_done += 1
        if self.telemetry is not None:
            self.telemetry.record_read(layer, num_retry)
        timing = self.timing
        total_raw = timing.t_read_us + num_retry * timing.t_retry_us
        t_read = total_raw if self.faults is None else self._op_latency(total_raw)
        # the retry share survives latency faults because the factor is
        # multiplicative over the whole operation
        t_retry = (
            t_read * (total_raw - timing.t_read_us) / total_raw
            if num_retry
            else 0.0
        )
        return ReadResult(
            t_read_us=t_read,
            num_retry=num_retry,
            final_offset=optimal,
            ber=ber,
            correctable=correctable,
            data=tag,
            t_retry_us=t_retry,
        )

    # ------------------------------------------------------------------
    # ONFI-style feature interface
    # ------------------------------------------------------------------

    def set_features(self, address: int, values: Tuple[int, ...]) -> float:
        """ONFI Set-Features: store an operating-parameter record.

        Returns the command latency (< 1 us, Section 5.1).
        """
        self._features[address] = tuple(values)
        return self.timing.t_param_set_us

    def get_features(self, address: int) -> Tuple[int, ...]:
        """ONFI Get-Features: read back an operating-parameter record."""
        if address not in self._features:
            raise AddressError(f"feature address {address:#x} was never set")
        return self._features[address]

    # ------------------------------------------------------------------
    # state queries and characterization helpers
    # ------------------------------------------------------------------

    def is_programmed(self, block: int, layer: int, wl: int) -> bool:
        self._check_block(block)
        return self._programmed[block][self.geometry.wl_index(layer, wl)]

    def programmed_wl_count(self, block: int) -> int:
        self._check_block(block)
        return self._programmed_counts[block]

    def block_read_count(self, block: int) -> int:
        """Reads since the block's last erase (read-disturb exposure)."""
        self._check_block(block)
        return self._block_reads[block]

    def wl_penalty(self, block: int, layer: int, wl: int) -> float:
        self._check_block(block)
        return self._penalty[block][self.geometry.wl_index(layer, wl)]

    def measure_retention_errors(
        self, block: int, layer: int, wl: int, aging: AgingState
    ) -> int:
        """Characterization-board helper: N_ret(w_ij, x, t) for an explicit
        aging condition (used by the Section 3 study harness)."""
        return self.reliability.n_ret(self.chip_id, block, layer, wl, aging)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable mutable state of the chip.

        Covers everything a program/erase/read can change: wear and
        programmed-state arrays, per-WL penalties and program noise,
        read-disturb counters, the deterministic nonces, stored tags and
        OOB records, the ONFI feature store, and the baseline aging.
        The model components (reliability surface, ISPP, ECC) are pure
        functions of the config and are rebuilt, not serialized.
        """
        return {
            "erase_counts": np.array(self._erase_counts, dtype=np.int32),
            "programmed": np.array(self._programmed, dtype=bool),
            "penalty": np.array(self._penalty, dtype=np.float64),
            "prog_noise": np.array(self._prog_noise, dtype=np.float64),
            "block_reads": np.array(self._block_reads, dtype=np.int64),
            "baseline": (
                self._baseline.pe_cycles,
                self._baseline.retention_months,
            ),
            "read_nonce": self._read_nonce,
            "program_nonce": self._program_nonce,
            "op_nonce": self._op_nonce,
            "reads_done": self.reads_done,
            "programs_done": self.programs_done,
            "erases_done": self.erases_done,
            "tags": dict(self._tags),
            "oob": dict(self._oob),
            "features": dict(self._features),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot; derived aging caches
        are dropped and rebuilt lazily."""
        self._erase_counts = [int(n) for n in state["erase_counts"]]
        programmed = np.asarray(state["programmed"], dtype=bool)
        self._programmed = programmed.tolist()
        self._programmed_counts = [int(n) for n in programmed.sum(axis=1)]
        self._penalty = np.asarray(state["penalty"], dtype=np.float64).tolist()
        self._prog_noise = np.asarray(
            state["prog_noise"], dtype=np.float64
        ).tolist()
        self._block_reads = [int(n) for n in state["block_reads"]]
        pe_cycles, retention_months = state["baseline"]
        self._baseline = AgingState(pe_cycles, retention_months)
        self._read_nonce = state["read_nonce"]
        self._program_nonce = state["program_nonce"]
        self._op_nonce = state["op_nonce"]
        self.reads_done = state["reads_done"]
        self.programs_done = state["programs_done"]
        self.erases_done = state["erases_done"]
        self._tags = dict(state["tags"])
        self._oob = dict(state["oob"])
        self._features = dict(state["features"])
        self._block_aging_cache.clear()
        self._fresh_aging_cache.clear()
        if self._fast is not None:
            self._fast.invalidate()

    def _op_latency(self, base_us: float) -> float:
        """Apply stuck-die latency faults to one operation's service time."""
        if self.faults is None:
            return base_us
        self._op_nonce += 1
        return base_us * self.faults.latency_factor(self.chip_id, self._op_nonce)

    def _draw_env_shift(self, block: int, layer: int, wl: int) -> int:
        self._program_nonce += 1
        u = hash_unit_tail(
            self._env_hash_state, block, layer, wl, self._program_nonce
        )
        if u < self.env_shift_prob:
            # direction from a second hash; shifts of +/-1 loop
            sign = 1 if hash_unit(self.reliability.seed, 0xD17, block, layer, wl) < 0.5 else -1
            return sign
        return 0

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.n_blocks:
            raise AddressError(f"block {block} out of range [0, {self.n_blocks})")
