"""Exemplar sampling: keep the K slowest requests per op type, plus a
deterministic reservoir of typical ones, with enough context to explain
*why* a request landed in the latency tail.

The :class:`ExemplarRecorder` is a :class:`~repro.obs.trace.TraceSink`
wrapper: it forwards every span unchanged to the inner sink (trace files
stay byte-identical) while accumulating per-request stage breakdowns
from the span stream.  When the end-to-end ``request`` span arrives it
finalizes an *exemplar record* carrying:

- the per-stage time breakdown (``stages_us``) and total latency,
- the summed retry count (``nand_read`` / ``read_retry`` /
  ``recovery_read`` spans carry ``retries`` info),
- the h-layers touched, fed through the :meth:`annotate` side channel
  (the FTL reports the physical layer of each page *without* emitting a
  span, so golden traces are untouched),
- a ``gc_collision`` flag: whether a background operation (GC read/
  program or erase) on one of the request's chips overlapped the
  request's lifetime, i.e. the request plausibly queued behind it.

Selection is deterministic: the slowest-K set is exact (ties broken by
request id), and the "typical" set is reservoir sampling driven by a
``random.Random`` seeded from the run seed, so the same seeded run
always retains the same exemplars (the artifact byte-identity tests
rely on this).
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs.trace import BACKGROUND_STAGES, Span, TraceSink

#: how many completed background intervals to remember per chip when
#: testing for GC collisions (oldest evicted first)
BACKGROUND_WINDOW = 64

#: tail buckets linked from the latency histogram, widest first
TAIL_BUCKETS = ("p90-p99", "p99-p999", "p999-max")


class ExemplarRecorder(TraceSink):
    """Accumulate tail and typical request exemplars from a span stream.

    Parameters
    ----------
    inner:
        Sink every span is forwarded to (use a
        :class:`~repro.obs.trace.NullSink` when no trace file was
        requested).
    k_slowest:
        Exact slowest-K retained per op type (``read`` / ``write``).
    reservoir_size:
        Size of the uniform "typical" reservoir per op type.
    seed:
        Run seed; the reservoir RNG derives from it per op type.
    """

    def __init__(
        self,
        inner: Optional[TraceSink] = None,
        k_slowest: int = 8,
        reservoir_size: int = 16,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.k_slowest = k_slowest
        self.reservoir_size = reservoir_size
        self.seed = seed
        # per-request accumulation, finalized on the "request" span
        self._stages: Dict[int, Dict[str, float]] = {}
        self._retries: Dict[int, int] = {}
        self._chips: Dict[int, set] = {}
        self._layers: Dict[int, set] = {}
        # per-chip recent background intervals: (start_us, end_us)
        self._background: Dict[int, Deque[Tuple[float, float]]] = {}
        # per-kind selections
        self._seq = 0
        self._counts: Dict[str, int] = {}
        # min-heap of (latency_us, -seq, record): root is the entry to evict
        self._slowest: Dict[str, List[tuple]] = {}
        self._reservoir: Dict[str, List[dict]] = {}
        self._rng: Dict[str, random.Random] = {}

    # -- side channel ---------------------------------------------------

    def annotate(self, request: int, lpn: int, info: dict) -> None:
        """Record out-of-band page context (currently the h-layer) for a
        request without emitting a span."""
        layer = info.get("layer")
        if layer is not None:
            self._layers.setdefault(request, set()).add(layer)

    # -- sink protocol --------------------------------------------------

    def emit(self, span: Span) -> None:
        if self.inner is not None:
            self.inner.emit(span)
        if span.stage in BACKGROUND_STAGES:
            if span.chip is not None:
                window = self._background.get(span.chip)
                if window is None:
                    window = deque(maxlen=BACKGROUND_WINDOW)
                    self._background[span.chip] = window
                window.append((span.start_us, span.end_us))
            return
        if span.request is None:
            return
        if span.stage == "request":
            self._finalize(span)
            return
        stages = self._stages.setdefault(span.request, {})
        stages[span.stage] = stages.get(span.stage, 0.0) + span.duration_us
        retries = span.info.get("retries")
        if retries:
            self._retries[span.request] = (
                self._retries.get(span.request, 0) + int(retries)
            )
        if span.chip is not None:
            self._chips.setdefault(span.request, set()).add(span.chip)

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()

    # -- finalization ---------------------------------------------------

    def _finalize(self, span: Span) -> None:
        request = span.request
        kind = str(span.info.get("kind", "unknown"))
        chips = self._chips.pop(request, None) or set()
        record = {
            "request": request,
            "kind": kind,
            "lpn": span.info.get("lpn"),
            "n_pages": span.info.get("n_pages"),
            "start_us": span.start_us,
            "end_us": span.end_us,
            "latency_us": span.end_us - span.start_us,
            "stages_us": dict(sorted(self._stages.pop(request, {}).items())),
            "retries": self._retries.pop(request, 0),
            "chips": sorted(chips),
            "layers": sorted(self._layers.pop(request, set())),
            "gc_collision": self._collides(chips, span.start_us, span.end_us),
        }
        tenant = span.info.get("tenant")
        if tenant is not None:
            record["tenant"] = tenant
        self._select(kind, record)

    def _collides(self, chips: set, start_us: float, end_us: float) -> bool:
        for chip in chips:
            window = self._background.get(chip)
            if not window:
                continue
            for bg_start, bg_end in window:
                if bg_end > start_us and bg_start < end_us:
                    return True
        return False

    def _select(self, kind: str, record: dict) -> None:
        self._seq += 1
        count = self._counts.get(kind, 0) + 1
        self._counts[kind] = count
        # exact slowest-K (ties keep the earlier request)
        heap = self._slowest.setdefault(kind, [])
        entry = (record["latency_us"], -self._seq, record)
        if len(heap) < self.k_slowest:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
        # uniform reservoir of typical requests
        reservoir = self._reservoir.setdefault(kind, [])
        if len(reservoir) < self.reservoir_size:
            reservoir.append(record)
        else:
            rng = self._rng.get(kind)
            if rng is None:
                rng = random.Random(f"{self.seed}:{kind}")
                self._rng[kind] = rng
            slot = rng.randrange(count)
            if slot < self.reservoir_size:
                reservoir[slot] = record

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Deterministic JSON-ready view of the retained exemplars."""
        kinds = {}
        for kind in sorted(self._counts):
            slowest = sorted(
                self._slowest.get(kind, []),
                key=lambda entry: (-entry[0], -entry[1]),
            )
            kinds[kind] = {
                "count": self._counts[kind],
                "slowest": [entry[2] for entry in slowest],
                "typical": list(self._reservoir.get(kind, [])),
            }
        return {
            "k_slowest": self.k_slowest,
            "reservoir_size": self.reservoir_size,
            "seed": self.seed,
            "kinds": kinds,
        }


def link_tail_buckets(exemplars: dict, thresholds: Dict[str, dict]) -> dict:
    """Link slowest exemplars to latency-histogram tail buckets.

    ``thresholds`` maps op kind to ``{"p90_us", "p99_us", "p999_us",
    "max_us"}`` (from the run's latency statistics).  Returns, per kind,
    the thresholds plus ``buckets``: tail-bucket name -> request ids of
    the retained exemplars whose latency falls in that bucket (exemplars
    below p90 are not tail exemplars and are left unlinked).
    """
    links = {}
    for kind in sorted(thresholds):
        cuts = thresholds[kind]
        buckets = {name: [] for name in TAIL_BUCKETS}
        for record in exemplars.get("kinds", {}).get(kind, {}).get("slowest", []):
            latency = record["latency_us"]
            if latency >= cuts["p999_us"]:
                buckets["p999-max"].append(record["request"])
            elif latency >= cuts["p99_us"]:
                buckets["p99-p999"].append(record["request"])
            elif latency >= cuts["p90_us"]:
                buckets["p90-p99"].append(record["request"])
        links[kind] = {
            "thresholds": {key: cuts[key] for key in sorted(cuts)},
            "buckets": buckets,
        }
    return links
