"""Tests for OPM memory accounting (the Section 5.2 trade-off)."""


from repro.core.opm import LEADER_OBSERVATION_BYTES, OptimalParameterManager
from repro.core.ort import BYTES_PER_ENTRY


class TestOPMMemory:
    def test_empty_opm_has_no_footprint(self, quiet_chip):
        opm = OptimalParameterManager(quiet_chip.ispp)
        assert opm.memory_bytes() == 0

    def test_leader_observations_cost_memory(self, quiet_chip):
        opm = OptimalParameterManager(quiet_chip.ispp)
        for layer in range(5):
            result = quiet_chip.program_wl(0, layer, 0)
            opm.record_leader(0, 0, layer, result)
        assert opm.memory_bytes() == 5 * LEADER_OBSERVATION_BYTES

    def test_ort_entries_cost_memory(self, quiet_chip):
        opm = OptimalParameterManager(quiet_chip.ispp)
        opm.ort.update(0, 0, 1, 2)
        opm.ort.update(0, 0, 2, 3)
        assert opm.memory_bytes() == 2 * BYTES_PER_ENTRY

    def test_invalidation_releases_memory(self, quiet_chip):
        opm = OptimalParameterManager(quiet_chip.ispp)
        for layer in range(5):
            opm.record_leader(0, 0, layer, quiet_chip.program_wl(0, layer, 0))
        opm.ort.update(0, 0, 1, 2)
        opm.invalidate_block(0, 0, quiet_chip.geometry.n_layers)
        assert opm.memory_bytes() == 0

    def test_bounded_by_active_blocks(self, quiet_chip):
        """At most (active blocks x layers) observations exist at once --
        the paper's argument for keeping the active-block count small."""
        opm = OptimalParameterManager(quiet_chip.ispp)
        n_layers = quiet_chip.geometry.n_layers
        for block in range(2):  # two active blocks
            for layer in range(n_layers):
                opm.record_leader(
                    0, block, layer, quiet_chip.program_wl(block, layer, 0)
                )
        per_chip_bound = 2 * n_layers * LEADER_OBSERVATION_BYTES
        assert opm.memory_bytes() == per_chip_bound
        assert per_chip_bound < 2048  # trivially small per chip
