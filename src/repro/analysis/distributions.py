"""Distribution utilities: CDFs, histograms, percentile tables."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def cdf_points(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: (sorted values, cumulative fractions)."""
    array = np.sort(np.asarray(samples, dtype=float))
    if array.size == 0:
        return np.array([]), np.array([])
    fractions = np.arange(1, array.size + 1) / array.size
    return array, fractions


def histogram(samples: Sequence[int], max_value: int = None) -> List[int]:
    """Integer histogram (e.g. NumRetry counts), zero-padded."""
    array = np.asarray(samples, dtype=int)
    if array.size == 0:
        return []
    if (array < 0).any():
        raise ValueError("samples must be non-negative")
    length = (max_value if max_value is not None else int(array.max())) + 1
    return np.bincount(array, minlength=length).tolist()[:length]


def percentile_table(
    samples: Sequence[float],
    percentiles: Sequence[float] = (50, 80, 90, 95, 99),
) -> Dict[float, float]:
    """Selected percentiles of a sample set."""
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        return {p: 0.0 for p in percentiles}
    return {p: float(np.percentile(array, p)) for p in percentiles}
