"""Steady-state garbage collection under PS-aware programming.

Not a paper figure, but a system-level consequence the paper implies:
GC migrations are programs and reads too, so cubeFTL's follower
programming and ORT-assisted reads accelerate GC itself.  This bench
fills a small device completely and drives sustained random overwrites
so every FTL runs continuous GC, then compares throughput, write
amplification, and GC volume.

Expected shape: both FTLs sustain the workload with similar write
amplification (GC policy is shared), but cubeFTL completes the same work
faster.
"""

import dataclasses

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.synthetic import uniform_random_trace

N_REQUESTS = 6000


def _config():
    geometry = SSDGeometry(
        n_channels=2,
        chips_per_channel=2,
        blocks_per_chip=24,
        block=BlockGeometry(),
    )
    return SSDConfig(
        geometry=geometry, logical_fraction=0.85, gc_trigger_blocks=6
    )


def _run(ftl):
    config = _config()
    sim = SSDSimulation(config, ftl=ftl)
    sim.prefill(1.0)
    # overwrites concentrate on 40 % of the space so victim blocks
    # accumulate invalid pages quickly (hot/cold separation keeps the
    # cold prefill data out of the GC churn)
    hot_region = (0, int(config.logical_pages * 0.4))
    trace = uniform_random_trace(
        config.logical_pages,
        N_REQUESTS,
        read_fraction=0.1,
        seed=11,
        region=hot_region,
    )
    stats = sim.run(trace, queue_depth=32, warmup_requests=1500)
    sim.ftl.mapper.check_invariants()
    return stats


@pytest.fixture(scope="module")
def gc_results():
    return {ftl: _run(ftl) for ftl in ("page", "cube")}


def test_gc_steady_state(benchmark, gc_results):
    results = benchmark.pedantic(lambda: gc_results, rounds=1, iterations=1)
    rows = []
    for ftl, stats in results.items():
        c = stats.counters
        host_programs = max(1, c.flash_programs)
        wa = (c.flash_programs + c.gc_programs) / host_programs
        rows.append([
            stats.ftl_name,
            f"{stats.iops:.0f}",
            c.erases,
            c.gc_programs,
            round(wa, 2),
            round(c.mean_t_prog_us),
        ])
    emit(
        "gc_steadystate",
        "Steady-state GC comparison (device 100% filled, random overwrites):\n"
        + format_table(
            ["FTL", "IOPS", "erases", "GC programs", "write amp", "tPROG us"],
            rows,
        ),
    )
    page, cube = results["page"], results["cube"]
    # GC genuinely ran for both
    assert page.counters.erases > 0
    assert cube.counters.erases > 0
    # shared GC policy -> comparable write amplification (within 30 %)
    def wa(stats):
        c = stats.counters
        return (c.flash_programs + c.gc_programs) / max(1, c.flash_programs)

    assert abs(wa(cube) - wa(page)) / wa(page) < 0.35
    # the PS-aware FTL finishes the same work faster
    assert cube.iops > page.iops
    assert cube.counters.mean_t_prog_us < page.counters.mean_t_prog_us
