"""Latency / IOPS statistics collection and CDF helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:
    from repro.ftl.base import FTLCounters
    from repro.obs.metrics import MetricsSample

#: version stamp of the :meth:`SimulationStats.to_dict` layout; bump when
#: keys change shape so downstream tooling can dispatch (v2: typed counter
#: serialization, p999/max latency fields, optional metrics timeline)
SCHEMA_VERSION = 2


class LatencyStats:
    """Accumulates latency samples (microseconds) and summarizes them.

    The numpy view of the samples is built lazily and cached: a run adds
    hundreds of thousands of samples one by one, then summarizes the
    same distribution many times (mean, several percentiles, CDF), and
    rebuilding the array for every query dominated to_dict() time.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._array: Optional[np.ndarray] = None

    def add(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError("latency must be >= 0")
        self._samples.append(latency_us)
        self._array = None

    def extend(self, samples: Sequence[float]) -> None:
        """Bulk-append samples (checkpoint restore)."""
        self._samples.extend(float(value) for value in samples)
        self._array = None

    def sample_list(self) -> List[float]:
        """The raw samples as a plain list (checkpoint serialization)."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> np.ndarray:
        if self._array is None:
            self._array = np.asarray(self._samples, dtype=float)
        return self._array

    @property
    def mean_us(self) -> float:
        return float(np.mean(self.samples)) if self._samples else 0.0

    @property
    def max_us(self) -> float:
        return float(np.max(self.samples)) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """p-th percentile latency in microseconds (p in [0, 100])."""
        if not self._samples:
            return 0.0
        return float(np.percentile(self.samples, p))

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted latencies, cumulative fraction) for CDF plots."""
        if not self._samples:
            return np.array([]), np.array([])
        values = np.sort(self.samples)
        fractions = np.arange(1, len(values) + 1) / len(values)
        return values, fractions

    def fraction_below(self, threshold_us: float) -> float:
        if not self._samples:
            return 0.0
        return float(np.mean(self.samples <= threshold_us))


def _latency_block(stats: LatencyStats) -> dict:
    return {
        "count": len(stats),
        "mean_us": stats.mean_us,
        "p50_us": stats.percentile(50),
        "p90_us": stats.percentile(90),
        "p99_us": stats.percentile(99),
        "p999_us": stats.percentile(99.9),
        "max_us": stats.max_us,
    }


@dataclass
class TenantStats:
    """Per-tenant slice of a multi-tenant run's statistics."""

    completed_requests: int = 0
    read_latency: LatencyStats = field(default_factory=LatencyStats)
    write_latency: LatencyStats = field(default_factory=LatencyStats)

    def iops(self, duration_us: float) -> float:
        if duration_us <= 0:
            return 0.0
        return self.completed_requests / (duration_us / 1e6)

    @property
    def p99_us(self) -> float:
        """p99 over reads and writes together (the interference metric)."""
        samples = self.read_latency.sample_list() + self.write_latency.sample_list()
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples, dtype=float), 99))

    def to_dict(self, duration_us: float = 0.0) -> dict:
        return {
            "completed_requests": self.completed_requests,
            "iops": self.iops(duration_us),
            "p99_us": self.p99_us,
            "read_latency": _latency_block(self.read_latency),
            "write_latency": _latency_block(self.write_latency),
        }


@dataclass
class SimulationStats:
    """Result of one simulation run."""

    ftl_name: str
    workload: str
    duration_us: float = 0.0
    completed_requests: int = 0
    read_latency: LatencyStats = field(default_factory=LatencyStats)
    write_latency: LatencyStats = field(default_factory=LatencyStats)
    counters: Optional["FTLCounters"] = None
    #: :class:`~repro.faults.counters.RecoveryCounters` of the run; only
    #: serialized when any recovery action fired, so fault-free output is
    #: unchanged
    recovery: Optional[object] = None
    #: time-sliced :class:`~repro.obs.metrics.MetricsSample` timeline;
    #: present only when the run sampled metrics
    metrics: Optional[List["MetricsSample"]] = None
    #: per-tenant statistics of a multi-tenant run, keyed by tenant name;
    #: None on single-stream runs so their serialized output is unchanged
    tenants: Optional[Dict[str, TenantStats]] = None

    @property
    def iops(self) -> float:
        """Completed host requests per second."""
        if self.duration_us <= 0:
            return 0.0
        return self.completed_requests / (self.duration_us / 1e6)

    def to_dict(self) -> dict:
        """JSON-serializable summary, result schema v2 (see
        docs/OBSERVABILITY.md for the layout contract)."""
        latency_block = _latency_block

        result = {
            "schema_version": SCHEMA_VERSION,
            "ftl": self.ftl_name,
            "workload": self.workload,
            "duration_us": self.duration_us,
            "completed_requests": self.completed_requests,
            "iops": self.iops,
            "read_latency": latency_block(self.read_latency),
            "write_latency": latency_block(self.write_latency),
        }
        if self.counters is not None:
            result["counters"] = self.counters.to_dict()
        if self.recovery is not None and self.recovery.any():
            result["recovery"] = self.recovery.to_dict()
        if self.metrics is not None:
            result["metrics"] = [sample.to_dict() for sample in self.metrics]
        if self.tenants is not None:
            result["tenants"] = {
                name: tenant.to_dict(self.duration_us)
                for name, tenant in self.tenants.items()
            }
        return result

    def summary(self) -> str:
        line = (
            f"{self.ftl_name:>9s} | {self.workload:>6s} | "
            f"IOPS {self.iops:10.0f} | "
            f"read p50/p99 {self.read_latency.percentile(50):7.0f}/"
            f"{self.read_latency.percentile(99):7.0f} us | "
            f"write p50/p99 {self.write_latency.percentile(50):7.0f}/"
            f"{self.write_latency.percentile(99):7.0f} us"
        )
        if self.recovery is not None and self.recovery.any():
            recovery = self.recovery
            line += (
                f" | recovery: pfail {recovery.program_fails}"
                f" efail {recovery.erase_fails}"
                f" retired {recovery.blocks_retired}"
                f" scrubs {recovery.scrubs}"
                f" ort-inv {recovery.ort_invalidations}"
                f" uncorr {recovery.uncorrectable_after_recovery}"
            )
        return line


def normalize(values: Sequence[float], baseline: float) -> List[float]:
    """Normalize a series over a baseline value (paper-style plots)."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return [value / baseline for value in values]
