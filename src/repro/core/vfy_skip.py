"""Redundant-VFY elimination (Section 4.1.1).

Once the leading WL of an h-layer has been programmed and its per-state
completion intervals ``[L_min, L_max]`` monitored, the remaining WLs of
the h-layer can start verifying each state ``Pi`` only at loop
``L_min^Pi``, skipping the earlier verifies entirely.  The number of
verifies skipped for state ``Pi`` is the paper's

.. math::

    N_{skip}^{Pi} = \\Big(\\sum_{s=P1}^{P(i-1)} L_{max}^s\\Big)
                    + (L_{min}^{Pi} - 1)

when phase lengths are counted per state; with the absolute loop indexing
used by :class:`repro.nand.ispp.WLProgramProfile` this reduces to
``L_min^Pi - 1`` (verifies in loops ``1 .. L_min - 1`` are skipped).
Both formulations are provided so tests can cross-check them.
"""

from __future__ import annotations

from typing import Tuple

from repro.nand.ispp import VerifyPlan, WLProgramProfile


def n_skip_per_state(profile: WLProgramProfile, guard: int = 0) -> Tuple[int, ...]:
    """Verifies skipped per program state, given a monitored profile.

    With the package's default chip calibration this is ``(1, 2, ..., 7)``
    for TLC -- P1 skips one verify and P7 skips seven, exactly the
    behaviour of the paper's Fig. 8.
    """
    plan = VerifyPlan.from_profile(profile, guard=guard)
    return tuple(plan.skipped_before(s) for s in range(1, profile.n_states + 1))


def total_skipped(profile: WLProgramProfile, guard: int = 0) -> int:
    """Total verifies a follower WL skips relative to the default plan."""
    return sum(n_skip_per_state(profile, guard=guard))


def paper_n_skip(profile: WLProgramProfile, state: int) -> int:
    """The paper's N_skip formula, evaluated on phase-local quantities.

    The paper counts ``L_max^s`` as the number of loops *attributed to*
    state ``s`` (phase length, Eq. 2) and ``L_min^Pi`` as the position of
    Pi's earliest completion within its own phase.  Translating the
    absolute intervals into that accounting reproduces the same skip
    count as :func:`n_skip_per_state`, which tests assert.
    """
    if not 1 <= state <= profile.n_states:
        raise ValueError(f"state {state} out of range")
    # phase boundary of state s: loops after the previous state's l_max
    prev_l_max = profile.interval(state - 1).l_max if state > 1 else 0
    phase_lengths = prev_l_max  # = sum of per-state phase lengths before Pi
    l_min_in_phase = profile.interval(state).l_min - prev_l_max
    return phase_lengths + l_min_in_phase - 1
