"""Follow an SSD across its lifetime: fresh to end of life.

Sweeps the aging state (P/E cycles and retention) and shows how the
device-level effects the paper characterizes translate into system-level
behaviour:

- read retries appear and grow (Section 2.3 / Fig. 14's premise),
- the spare margin S_M -- and with it the follower speedup -- shrinks,
- pageFTL's IOPS collapse while cubeFTL degrades far more gracefully.

Run:  python examples/aging_lifecycle.py
"""

from repro.analysis.ascii_plot import series_chart
from repro.analysis.tables import format_table
from repro.core.maxloop import DEFAULT_MARGIN_TABLE, spare_margin
from repro.nand.chip import NandChip
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.nand.reliability import AgingState
from repro.api import run_simulation
from repro.ssd.config import SSDConfig

STAGES = [
    ("fresh", AgingState(0, 0.0)),
    ("1K P/E", AgingState(1000, 0.0)),
    ("2K P/E", AgingState(2000, 0.0)),
    ("2K + 1 mo", AgingState(2000, 1.0)),
    ("2K + 6 mo", AgingState(2000, 6.0)),
    ("2K + 1 yr", AgingState(2000, 12.0)),
]


def device_level() -> None:
    print("== device level: margins and retries over the lifetime ==")
    chip = NandChip(chip_id=0, n_blocks=2, env_shift_prob=0.0)
    rows = []
    for label, aging in STAGES:
        ber_ep1 = chip.reliability.ber_ep1(0, 0, 24, 0, aging)
        s_m = spare_margin(ber_ep1)
        margin = DEFAULT_MARGIN_TABLE.margin_mv(s_m)
        drift = chip.retry_model.stable_optimal(0, 0, 24, aging)
        rows.append([label, f"{ber_ep1:.2e}", f"{s_m:.2f}",
                     f"{margin:.0f}", drift])
    print(format_table(
        ["stage", "BER_EP1", "S_M", "margin mV", "optimal offset"], rows
    ))


def system_level() -> None:
    print("\n== system level: IOPS under the Proxy workload ==")
    geometry = SSDGeometry(n_channels=2, chips_per_channel=4,
                           blocks_per_chip=32, block=BlockGeometry())
    series = {"pageFTL": [], "cubeFTL": []}
    xs = list(range(len(STAGES)))
    rows = []
    for label, aging in STAGES:
        config = SSDConfig(geometry=geometry).with_aging(aging)
        iops = {}
        for ftl in ("page", "cube"):
            stats = run_simulation(
                config, "Proxy", ftl=ftl, queue_depth=32,
                warmup_requests=1000, prefill=0.9, n_requests=4000, seed=7,
            ).stats
            iops[ftl] = stats.iops
        series["pageFTL"].append(iops["page"])
        series["cubeFTL"].append(iops["cube"])
        rows.append([label, f"{iops['page']:.0f}", f"{iops['cube']:.0f}",
                     f"{iops['cube'] / iops['page']:.2f}"])
    print(format_table(["stage", "pageFTL", "cubeFTL", "gain"], rows))
    print()
    print(series_chart(xs, series, width=48, height=10))
    print("            (x axis: lifetime stage index)")


if __name__ == "__main__":
    device_level()
    system_level()
