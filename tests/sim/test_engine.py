"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine


class TestEngine:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9.0

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(3.0, lambda n=name: order.append(n))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        engine = Engine()
        times = []

        def first():
            times.append(engine.now)
            engine.schedule(2.0, second)

        def second():
            times.append(engine.now)

        engine.schedule(1.0, first)
        engine.run()
        assert times == [1.0, 3.0]

    def test_run_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 2]

    def test_run_until_past_all_events_advances_clock(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_max_events(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=2)
        assert fired == [0, 1]

    def test_cancelled_events_skipped(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("cancelled"))
        engine.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        engine.run()
        assert fired == ["kept"]

    def test_schedule_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_processed_counter(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed == 3


class TestRecurringEvents:
    def test_rearms_while_live_events_remain(self):
        engine = Engine()
        samples = []
        for t in (1.5, 3.5):
            engine.schedule(t, lambda: None)
        engine.every(1.0, lambda: samples.append(engine.now))
        engine.run()
        assert samples  # sampled at least once alongside the live events

    def test_does_not_rearm_on_cancelled_corpses(self):
        """Regression: ``_fire`` used to gate on ``pending``, which counts
        cancelled events -- a queue holding only corpses kept the sampler
        alive and marched the clock past the last real event."""
        engine = Engine()
        samples = []
        engine.every(1.0, lambda: samples.append(engine.now))
        corpse = engine.schedule(100.0, lambda: None)
        corpse.cancel()
        engine.run()
        assert samples == [1.0]  # fired once, then saw no live work
        assert engine.now < 100.0

    def test_sampler_cannot_keep_engine_alive_alone(self):
        engine = Engine()
        ticks = []
        engine.every(2.0, lambda: ticks.append(engine.now))
        engine.schedule(5.0, lambda: None)
        engine.run()
        # final tick happens at most one interval past the last live event
        assert ticks and ticks[-1] <= 5.0 + 2.0
        assert engine.now <= 5.0 + 2.0

    def test_stop_cancels_pending_occurrence(self):
        engine = Engine()
        ticks = []
        recurring = engine.every(1.0, lambda: ticks.append(engine.now))
        engine.schedule(10.0, lambda: None)
        recurring.stop()
        engine.run()
        assert ticks == []


class TestHeapCompaction:
    def test_mass_cancellation_compacts_heap(self):
        engine = Engine()
        fired = []
        events = [
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
            for i in range(200)
        ]
        for event in events[::2]:
            event.cancel()
        assert engine.compactions >= 1
        assert engine.pending == engine.live_pending == 100

    def test_compaction_preserves_pop_order(self):
        engine = Engine()
        fired = []
        events = [
            engine.schedule(float(200 - i), lambda i=i: fired.append(i))
            for i in range(200)
        ]
        for event in events[:150]:
            event.cancel()
        assert engine.compactions >= 1
        engine.run()
        # survivors are i in [150, 200) scheduled at time 200-i: they must
        # fire in ascending time order, i.e. descending i
        assert fired == list(range(199, 149, -1))

    def test_cancel_is_idempotent(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()  # double cancel must not double-count
        assert engine.live_pending == 1
        engine.run()
        assert engine.processed == 1

    def test_cancel_after_pop_is_noop(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.step()
        event.cancel()  # already fired: must not corrupt accounting
        assert engine.live_pending == 1
        engine.run()
        assert engine.processed == 2
