"""Data-integrity oracle: a shadow store verifying every completed read.

The simulator's data convention is that every flash page stores a
*content tag* (an inert Python object carried through programs, GC
relocation and rewrites).  The oracle keeps its own shadow copy of the
logical space -- LPN -> the tag the host last wrote -- entirely outside
the FTL's structures, and checks every completed read against it:

- buffer hits must return the freshest admitted tag;
- flash reads must return the tag that was current *when the read
  started* (a concurrent overwrite may legally land after the read was
  issued, so the expectation is pinned at issue time);
- reads of never-written LPNs must find no shadow entry (a shadow entry
  with no mapping means the FTL silently lost data).

Reads that remain uncorrectable after the FTL's bounded recovery are
*data-loss escapes*: the device genuinely lost the page, the FTL
reported it (``uncorrectable_after_recovery``), and the oracle records
the escape instead of flagging a violation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.check.errors import InvariantViolation


class ShadowStore:
    """LPN -> last-written content tag, maintained independently of the
    FTL's mapping tables."""

    def __init__(self) -> None:
        self._tags: Dict[int, object] = {}
        self.writes_recorded = 0

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._tags

    def record(self, lpn: int, tag: object) -> None:
        self._tags[lpn] = tag
        self.writes_recorded += 1

    def expected(self, lpn: int) -> Optional[object]:
        return self._tags.get(lpn)

    def items(self):
        return self._tags.items()

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        return {"tags": dict(self._tags), "writes_recorded": self.writes_recorded}

    def load_state_dict(self, state: dict) -> None:
        self._tags = dict(state["tags"])
        self.writes_recorded = state["writes_recorded"]


class DataIntegrityOracle:
    """End-to-end read verification against a :class:`ShadowStore`.

    The oracle raises through a ``report`` callback (supplied by the
    :class:`~repro.check.invariants.InvariantChecker`) so every
    violation is counted and enriched with timestamp / trace context in
    one place.
    """

    def __init__(self, report) -> None:
        self.shadow = ShadowStore()
        self._report = report
        self.reads_verified = 0
        self.buffer_reads_verified = 0
        self.unmapped_reads = 0
        self.data_loss_escapes = 0

    # -- write side ------------------------------------------------------

    def record_write(self, lpn: int, tag: object) -> None:
        """A host write (or scrub re-admission) staged ``tag`` for an
        LPN; it becomes the expected content of every later read."""
        self.shadow.record(lpn, tag)

    def seed_prefilled(self, n_pages: int) -> None:
        """Prefill writes LPN ``i`` with tag ``i`` for the first
        ``n_pages`` logical pages (untimed, outside the datapath)."""
        for lpn in range(n_pages):
            self.shadow.record(lpn, lpn)

    # -- read side -------------------------------------------------------

    def expected(self, lpn: int) -> Optional[object]:
        """Pin the expectation for a read at issue time."""
        return self.shadow.expected(lpn)

    def verify_buffer_read(self, lpn: int, data: object) -> None:
        """A read served from the write buffer must see the freshest
        admitted copy."""
        self.buffer_reads_verified += 1
        expected = self.shadow.expected(lpn)
        if lpn in self.shadow and data != expected:
            self._report(
                InvariantViolation(
                    "data_integrity",
                    f"buffer read of LPN {lpn} returned {data!r}, "
                    f"expected {expected!r}",
                    lpn=lpn,
                )
            )

    def verify_unmapped_read(self, lpn: int) -> None:
        """An unmapped, unbuffered LPN must never have recorded data:
        a shadow entry here means the FTL dropped a mapping."""
        self.unmapped_reads += 1
        if lpn in self.shadow:
            self._report(
                InvariantViolation(
                    "data_integrity",
                    f"LPN {lpn} was written (tag "
                    f"{self.shadow.expected(lpn)!r}) but the FTL serves it "
                    "as never-written: mapping lost",
                    lpn=lpn,
                )
            )

    def verify_flash_read(
        self,
        lpn: int,
        ppn: int,
        expected: Optional[object],
        data: object,
        correctable: bool,
    ) -> None:
        """A completed flash read must return the tag pinned at issue
        time; uncorrectable escapes are recorded, not flagged."""
        if not correctable:
            self.data_loss_escapes += 1
            return
        self.reads_verified += 1
        if expected is not None and data != expected:
            self._report(
                InvariantViolation(
                    "data_integrity",
                    f"flash read of LPN {lpn} returned tag {data!r}, "
                    f"expected {expected!r}",
                    lpn=lpn,
                    ppn=ppn,
                )
            )

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable oracle state (the ``report`` callback is wiring,
        owned by the checker that rebuilds this oracle on restore)."""
        return {
            "shadow": self.shadow.state_dict(),
            "reads_verified": self.reads_verified,
            "buffer_reads_verified": self.buffer_reads_verified,
            "unmapped_reads": self.unmapped_reads,
            "data_loss_escapes": self.data_loss_escapes,
        }

    def load_state_dict(self, state: dict) -> None:
        self.shadow.load_state_dict(state["shadow"])
        self.reads_verified = state["reads_verified"]
        self.buffer_reads_verified = state["buffer_reads_verified"]
        self.unmapped_reads = state["unmapped_reads"]
        self.data_loss_escapes = state["data_loss_escapes"]

    # -- reporting -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "writes_recorded": self.shadow.writes_recorded,
            "shadow_lpns": len(self.shadow),
            "reads_verified": self.reads_verified,
            "buffer_reads_verified": self.buffer_reads_verified,
            "unmapped_reads": self.unmapped_reads,
            "data_loss_escapes": self.data_loss_escapes,
        }
