#!/usr/bin/env python
"""Diff ``tools/bench.py`` snapshots and fail on regressions.

Cases are matched by name.  A case regresses when, beyond tolerance
(default 10 %):

- IOPS dropped: ``new.iops < old.iops * (1 - tol)``
- p99 latency rose: ``new.p99 > old.p99 * (1 + tol)`` (read or write)

The simulated metrics are seeded and deterministic, so on an unchanged
simulator the deltas are exactly zero; the tolerance is headroom for
*intentional* model changes, which should regenerate the baseline.
Wall-clock and RSS are host-dependent and reported informationally;
``--wall-tolerance`` opts into gating on wall-clock too (useful when
both snapshots come from the same machine, e.g. one CI job)::

    PYTHONPATH=src python tools/bench_compare.py BENCH_0.json BENCH_1.json

With three or more snapshots a *trajectory table* is printed instead --
per-case IOPS and p99 across every snapshot in argument order (oldest
first) -- and regressions are gated on last-vs-first::

    PYTHONPATH=src python tools/bench_compare.py BENCH_0.json BENCH_1.json BENCH_2.json

Exits 1 on any regression, 2 on mismatched snapshots.

The comparison primitives live in :mod:`repro.obs.diffing` (shared with
``repro-ssd diff`` for run artifacts); this tool is the bench-snapshot
front end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.diffing import (  # noqa: E402
    SchemaDriftError,
    compare_case,
    pct as _pct,
)

__all__ = ["SchemaDriftError", "compare_case", "main"]


def _load_snapshots(paths: List[str]):
    documents = []
    for path in paths:
        with open(path) as handle:
            documents.append(json.load(handle))
    return documents


def _validate_pairwise(old_path, old_doc, new_path, new_doc) -> int:
    """Structural checks shared by the 2-snapshot and trajectory modes;
    returns 0 when comparable, 2 (the exit code) otherwise."""
    if old_doc.get("smoke") != new_doc.get("smoke"):
        print(
            "FAIL: comparing a smoke snapshot against a full one",
            file=sys.stderr,
        )
        return 2
    for source, document in ((old_path, old_doc), (new_path, new_doc)):
        if not isinstance(document.get("cases"), list):
            print(
                f"FAIL: {source} has no 'cases' list "
                "(not a tools/bench.py snapshot, or bench schema drift)",
                file=sys.stderr,
            )
            return 2
        unnamed = [c for c in document["cases"] if "name" not in c]
        if unnamed:
            print(
                f"FAIL: {source} has {len(unnamed)} case(s) without a "
                "'name' key (bench schema drift)",
                file=sys.stderr,
            )
            return 2
    old_cases = {case["name"]: case for case in old_doc["cases"]}
    new_cases = {case["name"]: case for case in new_doc["cases"]}
    missing = sorted(set(old_cases) - set(new_cases))
    if missing:
        print(f"FAIL: cases missing from {new_path}: {missing}", file=sys.stderr)
        return 2
    return 0


def _info(case, *path):
    """Informational metric: None (printed as n/a) when absent."""
    value = case
    for key in path:
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def _compare_two(paths, documents, tolerance, wall_tolerance) -> int:
    old_path, new_path = paths
    old_doc, new_doc = documents
    status = _validate_pairwise(old_path, old_doc, new_path, new_doc)
    if status:
        return status

    old_cases = {case["name"]: case for case in old_doc["cases"]}
    new_cases = {case["name"]: case for case in new_doc["cases"]}
    problems: List[str] = []
    for name in sorted(old_cases):
        old_case, new_case = old_cases[name], new_cases[name]
        try:
            problems += compare_case(
                old_case, new_case, tolerance, wall_tolerance,
                old_source=old_path, new_source=new_path,
            )
        except SchemaDriftError as drift:
            print(f"FAIL: {drift}", file=sys.stderr)
            return 2
        old_iops = _info(old_case, "iops")
        new_iops = _info(new_case, "iops")
        print(
            f"{name:>12}: IOPS "
            f"{old_iops:8.0f} -> {new_iops:8.0f} "
            f"({_pct(new_iops, old_iops)}), "
            f"read p99 {_pct(_info(new_case, 'read_latency', 'p99_us'), _info(old_case, 'read_latency', 'p99_us'))}, "
            f"write p99 {_pct(_info(new_case, 'write_latency', 'p99_us'), _info(old_case, 'write_latency', 'p99_us'))}, "
            f"wall {_pct(_info(new_case, 'wall_clock_s'), _info(old_case, 'wall_clock_s'))} (info)"
        )
    extra = sorted(set(new_cases) - set(old_cases))
    if extra:
        print(f"note: new cases not in baseline: {extra}")

    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print(f"OK: {len(old_cases)} case(s) within {tolerance:.0%} tolerance")
    return 0


def _compare_trajectory(paths, documents, tolerance, wall_tolerance) -> int:
    """3+ snapshots: per-case metric trajectory across every snapshot
    (argument order, oldest first), gated on last-vs-first."""
    first_path, first_doc = paths[0], documents[0]
    for path, document in zip(paths[1:], documents[1:]):
        status = _validate_pairwise(first_path, first_doc, path, document)
        if status:
            return status

    labels = [os.path.basename(path) for path in paths]
    case_names = sorted(case["name"] for case in first_doc["cases"])
    by_name = [
        {case["name"]: case for case in document["cases"]}
        for document in documents
    ]

    print(f"trajectory over {len(paths)} snapshot(s): {' -> '.join(labels)}")
    for metric_label, metric_path in (
        ("IOPS", ("iops",)),
        ("read p99 us", ("read_latency", "p99_us")),
        ("write p99 us", ("write_latency", "p99_us")),
    ):
        print(f"\n{metric_label}:")
        for name in case_names:
            values = [_info(cases.get(name, {}), *metric_path)
                      for cases in by_name]
            cells = " -> ".join(
                "n/a" if v is None else f"{v:8.1f}" for v in values
            )
            trend = _pct(values[-1], values[0])
            print(f"  {name:>16}: {cells}  ({trend} overall)")

    problems: List[str] = []
    last_cases = by_name[-1]
    for name in case_names:
        try:
            problems += compare_case(
                by_name[0][name], last_cases[name], tolerance,
                wall_tolerance,
                old_source=paths[0], new_source=paths[-1],
            )
        except SchemaDriftError as drift:
            print(f"FAIL: {drift}", file=sys.stderr)
            return 2
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print(
        f"\nOK: {len(case_names)} case(s) within {tolerance:.0%} tolerance "
        f"({labels[-1]} vs {labels[0]})"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "snapshots",
        nargs="+",
        metavar="BENCH.json",
        help="two snapshots (baseline, candidate) for a pairwise diff, "
        "or three and more (oldest first) for a trajectory table gated "
        "on last-vs-first",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative drift in IOPS / p99 latency (default 0.10)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        help="also gate on wall-clock with this tolerance (off by default: "
        "wall time is host-dependent)",
    )
    args = parser.parse_args(argv)
    if len(args.snapshots) < 2:
        parser.error("need at least two snapshots to compare")

    documents = _load_snapshots(args.snapshots)
    if len(args.snapshots) == 2:
        return _compare_two(
            args.snapshots, documents, args.tolerance, args.wall_tolerance
        )
    return _compare_trajectory(
        args.snapshots, documents, args.tolerance, args.wall_tolerance
    )


if __name__ == "__main__":
    sys.exit(main())
