"""End-to-end fault-injection and recovery tests.

Every scenario runs a real simulation under a seeded
:class:`~repro.faults.campaign.FaultCampaign` and asserts on the FTL's
:class:`~repro.faults.counters.RecoveryCounters` and the block manager's
grown-bad table.  All campaigns are deterministic, so the exact fault
sequence -- and therefore the exact recovery work -- replays on every
run.
"""

import json

import pytest

from repro.faults import CAMPAIGNS, FaultCampaign
from repro.nand.errors import EraseFailError
from repro.nand.reliability import AgingState
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDSimulation
from repro.workloads.synthetic import uniform_random_trace


def _retire_reasons(sim):
    reasons = {}
    for chip_id in range(sim.config.geometry.n_chips):
        for _block, reason in sim.ftl.blocks.grown_bad_table(chip_id).items():
            reasons[reason] = reasons.get(reason, 0) + 1
    return reasons


class TestProgramFailRecovery:
    def test_program_fail_retires_block_and_rewrites_data(self):
        campaign = FaultCampaign(name="pf", program_fail_prob=0.01)
        config = SSDConfig.small(logical_fraction=0.4).with_faults(campaign)
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(0.9)
        trace = uniform_random_trace(
            config.logical_pages, 400, read_fraction=0.2, seed=5
        )
        stats = sim.run(trace, queue_depth=8)
        recovery = sim.ftl.recovery
        assert recovery.program_fails >= 1
        assert recovery.blocks_retired >= 1
        assert _retire_reasons(sim).get("program_fail", 0) >= 1
        # the in-flight data was rewritten, not lost: every request
        # completed and the mapping stayed consistent
        assert stats.completed_requests == len(trace)
        sim.ftl.mapper.check_invariants()

    def test_retired_blocks_reported_in_stats(self):
        campaign = FaultCampaign(name="pf", program_fail_prob=0.01)
        config = SSDConfig.small(logical_fraction=0.4).with_faults(campaign)
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(0.9)
        trace = uniform_random_trace(
            config.logical_pages, 400, read_fraction=0.2, seed=5
        )
        stats = sim.run(trace, queue_depth=8)
        assert stats.recovery is sim.ftl.recovery
        assert "recovery" in stats.to_dict()
        assert "recovery" in stats.summary()


class TestEraseFailRecovery:
    def test_transient_erase_fail_retires_block(self):
        campaign = FaultCampaign(name="ef", erase_fail_prob=0.1)
        config = SSDConfig.small(
            logical_fraction=0.6, gc_trigger_blocks=3
        ).with_faults(campaign)
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(1.0)
        trace = uniform_random_trace(
            config.logical_pages, 1200, read_fraction=0.2, seed=5
        )
        stats = sim.run(trace, queue_depth=8)
        recovery = sim.ftl.recovery
        assert stats.counters.erases > 0
        assert recovery.erase_fails >= 1
        assert recovery.blocks_retired >= recovery.erase_fails
        assert _retire_reasons(sim).get("erase_fail", 0) >= 1
        sim.ftl.mapper.check_invariants()

    def test_grown_bad_block_fails_from_onset(self):
        """A grown-bad block erases fine before its onset count and
        reports FAIL status from then on (chip-level contract)."""
        campaign = FaultCampaign(
            name="gb", grown_bad_per_chip=1, grown_bad_onset_erases=1
        )
        config = SSDConfig.small().with_faults(campaign)
        sim = SSDSimulation(config, ftl="page")
        chip = sim.controller.chip(0)
        (bad,) = sim.controller.faults.grown_bad_blocks(0, chip.n_blocks)
        chip.erase_block(bad)  # first dynamic erase is still fine
        with pytest.raises(EraseFailError):
            chip.erase_block(bad)


class TestReadRecovery:
    def test_ber_spikes_trigger_scrubs_and_recovered_reads(self):
        campaign = FaultCampaign(
            name="spike", ber_spike_prob=0.5, ber_spike_factor=4.4
        )
        config = (
            SSDConfig.small(logical_fraction=0.8)
            .with_aging(AgingState(2000, 12.0))
            .with_faults(campaign)
        )
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(0.9)
        trace = uniform_random_trace(
            config.logical_pages, 400, read_fraction=0.8, seed=5
        )
        stats = sim.run(trace, queue_depth=8)
        recovery = sim.ftl.recovery
        # low-margin reads were refreshed in the background ...
        assert recovery.scrubs >= 1
        # ... and uncorrectable spiked reads were rescued by the
        # conservative nominal re-read
        assert recovery.recovered_reads >= 1
        assert stats.completed_requests == len(trace)

    def test_forced_stale_ort_recovered_without_data_loss(self):
        """Plant stale offsets (>= 3 steps) under every learned ORT
        entry: every hint-started sweep fails, the entry is invalidated,
        and the conservative nominal-start re-read recovers the data --
        no uncorrectable read escapes."""
        campaign = FaultCampaign(name="quiet")  # injector only, no rates
        config = (
            SSDConfig.small(logical_fraction=0.6)
            .with_aging(AgingState(2000, 12.0))
            .with_faults(campaign)
        )
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(0.9)
        warmup = uniform_random_trace(
            config.logical_pages, 300, read_fraction=1.0, seed=2
        )
        sim.run(warmup, queue_depth=8)
        entries = dict(sim.ftl.opm.ort._entries)
        assert entries, "warmup must learn ORT entries"
        for chip_id, block, layer in entries:
            sim.controller.faults.force_ort_skew(chip_id, block, layer, steps=4)
        trace = uniform_random_trace(
            config.logical_pages, 300, read_fraction=1.0, seed=4
        )
        stats = sim.run(trace, queue_depth=8)
        recovery = sim.ftl.recovery
        assert recovery.ort_invalidations >= 1
        assert recovery.recovered_reads >= recovery.ort_invalidations
        assert recovery.uncorrectable_after_recovery == 0
        assert stats.completed_requests == len(trace)


class TestAcceptanceCampaign:
    def test_default_campaign_completes_with_recovery_activity(self):
        """cubeFTL under the default campaign: the run completes without
        raising, failed blocks are retired, and the recovery counters
        are nonzero."""
        config = SSDConfig.small(
            logical_fraction=0.45, gc_trigger_blocks=3
        ).with_faults(CAMPAIGNS["default"])
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(1.0)
        trace = uniform_random_trace(
            config.logical_pages, 3000, read_fraction=0.3, seed=3
        )
        stats = sim.run(trace, queue_depth=8)
        recovery = sim.ftl.recovery
        assert recovery.any()
        assert recovery.blocks_retired >= 1
        assert _retire_reasons(sim)
        assert stats.completed_requests == len(trace)
        sim.ftl.mapper.check_invariants()


class TestDeterminismAndEquivalence:
    def _run(self, campaign):
        config = SSDConfig.small(
            logical_fraction=0.45, gc_trigger_blocks=3
        )
        if campaign is not None:
            config = config.with_faults(campaign)
        sim = SSDSimulation(config, ftl="cube")
        sim.prefill(1.0)
        trace = uniform_random_trace(
            config.logical_pages, 1000, read_fraction=0.3, seed=3
        )
        stats = sim.run(trace, queue_depth=8)
        return json.dumps(stats.to_dict(), sort_keys=True)

    def test_identical_campaign_runs_are_byte_identical(self):
        """Seeded-determinism regression: two runs of the same config --
        campaign included -- produce byte-identical statistics."""
        campaign = CAMPAIGNS["default"]
        assert self._run(campaign) == self._run(campaign)

    def test_zero_rate_campaign_matches_fault_free(self):
        """A campaign with every rate at zero is behaviorally identical
        to running without fault injection."""
        assert self._run(FaultCampaign(name="quiet")) == self._run(None)

    def test_campaign_seed_changes_fault_sequence(self):
        default = CAMPAIGNS["default"]
        reseeded = FaultCampaign(
            name="default",
            seed=99,
            program_fail_prob=default.program_fail_prob,
            erase_fail_prob=default.erase_fail_prob,
            grown_bad_per_chip=default.grown_bad_per_chip,
            ber_spike_prob=default.ber_spike_prob,
            ort_skew_prob=default.ort_skew_prob,
            stuck_die_prob=default.stuck_die_prob,
        )
        assert self._run(default) != self._run(reseeded)
