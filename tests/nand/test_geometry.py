"""Tests for the 3D NAND geometry and addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.nand.errors import AddressError
from repro.nand.geometry import BlockGeometry, PageAddress, SSDGeometry, WLAddress


class TestBlockGeometry:
    def test_default_matches_paper(self, block_geometry):
        assert block_geometry.n_layers == 48
        assert block_geometry.wls_per_layer == 4
        assert block_geometry.pages_per_wl == 3
        assert block_geometry.page_size_bytes == 16 * 1024

    def test_derived_sizes(self, block_geometry):
        assert block_geometry.wls_per_block == 192
        assert block_geometry.pages_per_block == 576
        assert block_geometry.block_bytes == 576 * 16 * 1024

    def test_n_vlayers_equals_wls_per_layer(self, block_geometry):
        assert block_geometry.n_vlayers == 4

    @pytest.mark.parametrize(
        "field,value",
        [("n_layers", 0), ("wls_per_layer", 0), ("pages_per_wl", 0),
         ("page_size_bytes", 0)],
    )
    def test_rejects_non_positive_dimensions(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            BlockGeometry(**kwargs)

    def test_wl_index_round_trip(self, small_geometry):
        seen = set()
        for layer in range(small_geometry.n_layers):
            for wl in range(small_geometry.wls_per_layer):
                index = small_geometry.wl_index(layer, wl)
                assert small_geometry.wl_from_index(index) == WLAddress(layer, wl)
                seen.add(index)
        assert seen == set(range(small_geometry.wls_per_block))

    def test_page_index_round_trip(self, small_geometry):
        seen = set()
        for layer in range(small_geometry.n_layers):
            for wl in range(small_geometry.wls_per_layer):
                for page in range(small_geometry.pages_per_wl):
                    index = small_geometry.page_index(layer, wl, page)
                    assert small_geometry.page_from_index(index) == (layer, wl, page)
                    seen.add(index)
        assert seen == set(range(small_geometry.pages_per_block))

    def test_wl_index_out_of_range(self, small_geometry):
        with pytest.raises(AddressError):
            small_geometry.wl_index(small_geometry.n_layers, 0)
        with pytest.raises(AddressError):
            small_geometry.wl_index(0, small_geometry.wls_per_layer)
        with pytest.raises(AddressError):
            small_geometry.wl_index(-1, 0)

    def test_page_out_of_range(self, small_geometry):
        with pytest.raises(AddressError):
            small_geometry.page_index(0, 0, small_geometry.pages_per_wl)
        with pytest.raises(AddressError):
            small_geometry.page_from_index(small_geometry.pages_per_block)

    def test_iter_wls_is_horizontal_first(self, small_geometry):
        addresses = list(small_geometry.iter_wls())
        assert len(addresses) == small_geometry.wls_per_block
        assert addresses[0] == WLAddress(0, 0)
        assert addresses[1] == WLAddress(0, 1)
        assert addresses[small_geometry.wls_per_layer] == WLAddress(1, 0)

    def test_iter_vlayer(self, small_geometry):
        column = list(small_geometry.iter_vlayer(2))
        assert len(column) == small_geometry.n_layers
        assert all(address.wl == 2 for address in column)
        assert [address.layer for address in column] == list(
            range(small_geometry.n_layers)
        )

    def test_iter_vlayer_out_of_range(self, small_geometry):
        with pytest.raises(AddressError):
            list(small_geometry.iter_vlayer(small_geometry.n_vlayers))


class TestSSDGeometry:
    def test_paper_scale_capacity(self):
        geometry = SSDGeometry()  # 2 buses x 4 chips x 428 blocks
        total_gb = geometry.total_bytes / 2**30
        # the paper configures a 32-GB target SSD
        assert 30 <= total_gb <= 34

    def test_chip_id_round_trip(self, ssd_geometry):
        seen = set()
        for channel in range(ssd_geometry.n_channels):
            for chip in range(ssd_geometry.chips_per_channel):
                chip_id = ssd_geometry.chip_id(channel, chip)
                assert ssd_geometry.channel_of_chip(chip_id) == channel
                seen.add(chip_id)
        assert seen == set(range(ssd_geometry.n_chips))

    def test_chip_id_out_of_range(self, ssd_geometry):
        with pytest.raises(AddressError):
            ssd_geometry.chip_id(ssd_geometry.n_channels, 0)
        with pytest.raises(AddressError):
            ssd_geometry.channel_of_chip(ssd_geometry.n_chips)

    def test_ppn_round_trip_exhaustive(self, ssd_geometry):
        count = 0
        for chip_id in range(ssd_geometry.n_chips):
            for block in range(ssd_geometry.blocks_per_chip):
                for layer in range(0, ssd_geometry.block.n_layers, 2):
                    address = PageAddress(block, layer, 1, 2)
                    ppn = ssd_geometry.ppn(chip_id, address)
                    back_chip, back_address = ssd_geometry.ppn_to_address(ppn)
                    assert (back_chip, back_address) == (chip_id, address)
                    count += 1
        assert count > 0

    def test_ppn_bounds(self, ssd_geometry):
        last = PageAddress(
            ssd_geometry.blocks_per_chip - 1,
            ssd_geometry.block.n_layers - 1,
            ssd_geometry.block.wls_per_layer - 1,
            ssd_geometry.block.pages_per_wl - 1,
        )
        ppn = ssd_geometry.ppn(ssd_geometry.n_chips - 1, last)
        assert ppn == ssd_geometry.total_pages - 1
        with pytest.raises(AddressError):
            ssd_geometry.ppn_to_address(ssd_geometry.total_pages)

    def test_ppn_rejects_bad_block(self, ssd_geometry):
        with pytest.raises(AddressError):
            ssd_geometry.ppn(0, PageAddress(ssd_geometry.blocks_per_chip, 0, 0, 0))


@given(
    layer=st.integers(min_value=0, max_value=47),
    wl=st.integers(min_value=0, max_value=3),
    page=st.integers(min_value=0, max_value=2),
    block=st.integers(min_value=0, max_value=427),
    chip=st.integers(min_value=0, max_value=7),
)
def test_ppn_bijection_property(layer, wl, page, block, chip):
    """PPN flattening is a bijection over the paper-scale device."""
    geometry = SSDGeometry()
    address = PageAddress(block, layer, wl, page)
    ppn = geometry.ppn(chip, address)
    assert 0 <= ppn < geometry.total_pages
    assert geometry.ppn_to_address(ppn) == (chip, address)


@given(index=st.integers(min_value=0, max_value=575))
def test_page_index_bijection_property(index):
    geometry = BlockGeometry()
    layer, wl, page = geometry.page_from_index(index)
    assert geometry.page_index(layer, wl, page) == index
