"""The crash-isolated shard runner.

Worker functions live at module level so they pickle into spawn-started
worker processes.
"""

import os
import time

from repro.parallel import ShardSpec, run_shards


def _double(x):
    return 2 * x


def _sleep_then_double(x, delay):
    time.sleep(delay)
    return 2 * x


def _raise(message):
    raise ValueError(message)


def _hard_exit(code):
    os._exit(code)  # simulates a segfault / OOM kill: no reporting at all


def _specs(n):
    return [ShardSpec(name=f"s{i}", fn=_double, kwargs={"x": i}) for i in range(n)]


class TestInlinePath:
    def test_results_in_order(self):
        outcomes = run_shards(_specs(4), jobs=1)
        assert [o.name for o in outcomes] == ["s0", "s1", "s2", "s3"]
        assert [o.result for o in outcomes] == [0, 2, 4, 6]
        assert all(o.ok for o in outcomes)

    def test_exception_is_isolated(self):
        specs = _specs(2) + [ShardSpec("bad", _raise, {"message": "boom"})]
        outcomes = run_shards(specs, jobs=1)
        assert [o.ok for o in outcomes] == [True, True, False]
        assert "ValueError" in outcomes[2].error
        assert "boom" in outcomes[2].error

    def test_progress_callback_sees_every_shard(self):
        seen = []
        run_shards(_specs(3), jobs=1, on_progress=lambda o: seen.append(o.name))
        assert sorted(seen) == ["s0", "s1", "s2"]


class TestProcessPool:
    def test_results_in_input_order_not_completion_order(self):
        # s0 sleeps longest, so it finishes last -- but must come first
        specs = [
            ShardSpec(
                name=f"s{i}",
                fn=_sleep_then_double,
                kwargs={"x": i, "delay": 0.3 if i == 0 else 0.0},
            )
            for i in range(3)
        ]
        outcomes = run_shards(specs, jobs=3)
        assert [o.name for o in outcomes] == ["s0", "s1", "s2"]
        assert [o.result for o in outcomes] == [0, 2, 4]

    def test_worker_exception_is_isolated(self):
        specs = _specs(3) + [ShardSpec("bad", _raise, {"message": "kaput"})]
        outcomes = run_shards(specs, jobs=2)
        assert [o.ok for o in outcomes] == [True, True, True, False]
        assert "kaput" in outcomes[3].error
        assert [o.result for o in outcomes[:3]] == [0, 2, 4]

    def test_hard_worker_death_is_isolated(self):
        # a worker dying without reporting (exit code, no traceback) must
        # fail only its own shard; every other shard still completes
        specs = _specs(3) + [ShardSpec("dead", _hard_exit, {"code": 3})]
        outcomes = run_shards(specs, jobs=2)
        assert [o.ok for o in outcomes] == [True, True, True, False]
        assert "exit code 3" in outcomes[3].error
        assert [o.result for o in outcomes[:3]] == [0, 2, 4]

    def test_more_shards_than_jobs(self):
        outcomes = run_shards(_specs(7), jobs=2)
        assert [o.result for o in outcomes] == [2 * i for i in range(7)]

    def test_progress_callback_sees_every_shard(self):
        seen = []
        run_shards(_specs(4), jobs=2, on_progress=lambda o: seen.append(o.name))
        assert sorted(seen) == ["s0", "s1", "s2", "s3"]

    def test_parallel_matches_inline(self):
        inline = run_shards(_specs(5), jobs=1)
        pooled = run_shards(_specs(5), jobs=4)
        assert [(o.name, o.ok, o.result) for o in inline] == [
            (o.name, o.ok, o.result) for o in pooled
        ]
