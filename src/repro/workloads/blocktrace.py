"""Real block-trace ingestion (MSR-Cambridge / blktrace-style CSV).

The synthetic generators reproduce the *statistics* of the paper's
workloads; this module replays *recorded* block traces through the same
simulator.  The accepted shape is a CSV (or whitespace-separated) file
with one request per line carrying, in order or by header name::

    timestamp, op, offset, size

- **timestamp** -- arrival time; ``time_unit`` scales it to simulated
  microseconds (``"us"``, ``"ms"``, ``"s"``, or ``"win100ns"`` for the
  MSR-Cambridge 100-ns Windows filetime ticks).  Timestamps are
  re-based so the first request arrives at 0.
- **op** -- ``R``/``W`` (any case), ``Read``/``Write``, ``RS``/``WS``
  (blktrace), or ``0``/``1`` (0 = read, as in the MSR traces).
- **offset** -- starting address; ``offset_unit`` says whether it is in
  ``"byte"``, ``"sector"`` (512 B), or ``"page"`` units.
- **size** -- request length in the same unit.

MSR-Cambridge rows (``timestamp,hostname,disk,type,offset,size,
response``) are recognized by column count and the extra fields are
ignored.  Lines starting with ``#`` and blank lines are skipped.

Addresses are scaled from LBA space to LPN space (``offset //
page_size``) and then fit to the simulated device's logical space with
one of four ``address_mode`` policies:

``"scale"`` (default)
    proportionally remap the observed address span onto
    ``[0, logical_pages)`` -- preserves relative layout/locality of the
    trace on any device size.
``"wrap"``
    ``lpn % logical_pages`` -- preserves absolute strides, folds the
    address space.
``"clamp"``
    clip out-of-range requests to the top of the logical space.
``"strict"``
    raise :class:`BlockTraceError` on the first out-of-range request.

Use the ``trace:<path>`` workload scheme (see
:func:`repro.workloads.build_workload` and
:class:`repro.specs.WorkloadSpec`) to plug a trace file in anywhere a
workload name is accepted; ``.csv`` files route here, anything else to
the native :func:`repro.workloads.traceio.load_trace` format.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.workloads.base import READ, WRITE, IORequest, Trace

#: bytes per sector for ``offset_unit="sector"`` (the universal LBA unit)
SECTOR_BYTES = 512

_TIME_UNIT_US = {
    "us": 1.0,
    "ms": 1e3,
    "s": 1e6,
    # MSR-Cambridge timestamps are Windows filetime ticks (100 ns)
    "win100ns": 0.1,
}

_ADDRESS_MODES = ("scale", "wrap", "clamp", "strict")

_READ_TOKENS = {"r", "rs", "read", "0"}
_WRITE_TOKENS = {"w", "ws", "write", "1"}

#: header names recognized for each field (lower-cased)
_FIELD_ALIASES = {
    "timestamp": ("timestamp", "time", "ts", "arrival"),
    "op": ("op", "type", "opcode", "operation"),
    "offset": ("offset", "lba", "addr", "address", "sector"),
    "size": ("size", "length", "len", "bytes", "nbytes"),
}


class BlockTraceError(ValueError):
    """The file is not a replayable block trace."""


def _split(line: str) -> List[str]:
    if "," in line:
        return [field.strip() for field in line.split(",")]
    return line.split()


def _parse_op(token: str, path: str, line_no: int) -> str:
    lowered = token.strip().lower()
    if lowered in _READ_TOKENS:
        return READ
    if lowered in _WRITE_TOKENS:
        return WRITE
    raise BlockTraceError(
        f"{path}:{line_no}: unrecognized op {token!r} "
        "(expected R/W, Read/Write, RS/WS, or 0/1)"
    )


def _header_columns(fields: List[str]) -> Optional[dict]:
    """Column indices when ``fields`` is a header row, else ``None``."""
    lowered = [field.lower() for field in fields]
    columns = {}
    for name, aliases in _FIELD_ALIASES.items():
        for alias in aliases:
            if alias in lowered:
                columns[name] = lowered.index(alias)
                break
    if len(columns) == 4:
        return columns
    return None


def _positional_columns(fields: List[str]) -> dict:
    """Column layout inferred from the field count of a data row."""
    if len(fields) >= 7:
        # MSR-Cambridge: timestamp,hostname,disk,type,offset,size,response
        return {"timestamp": 0, "op": 3, "offset": 4, "size": 5}
    if len(fields) >= 4:
        return {"timestamp": 0, "op": 1, "offset": 2, "size": 3}
    raise BlockTraceError(
        "rows need at least 4 columns (timestamp, op, offset, size); "
        f"got {len(fields)}"
    )


def _to_pages(value: int, unit: str, page_size_bytes: int) -> Tuple[int, int]:
    """(whole pages, remainder bytes) an offset/size covers."""
    if unit == "page":
        return value, 0
    scale = SECTOR_BYTES if unit == "sector" else 1
    return divmod(value * scale, page_size_bytes)


def load_block_trace(
    path: Union[str, Path],
    logical_pages: int,
    *,
    page_size_bytes: int = 4096,
    offset_unit: str = "byte",
    time_unit: str = "us",
    address_mode: str = "scale",
    time_scale: float = 1.0,
    limit: Optional[int] = None,
    name: Optional[str] = None,
) -> Trace:
    """Load a block-trace CSV into a replayable :class:`Trace`.

    Every request carries an ``arrival_us`` timestamp (re-based to the
    first request), so the result satisfies ``Trace.has_arrivals`` and
    replays open-loop / NCQ; passing it to a closed-loop run simply
    ignores the timestamps.  ``time_scale`` additionally stretches
    (>1) or compresses (<1) the arrival timeline after unit conversion,
    which is how a recorded trace is replayed at a higher or lower
    arrival rate than it was captured at.
    """
    path = Path(path)
    if logical_pages < 1:
        raise ValueError("logical_pages must be >= 1")
    if page_size_bytes < 1:
        raise ValueError("page_size_bytes must be >= 1")
    if offset_unit not in ("byte", "sector", "page"):
        raise ValueError("offset_unit must be 'byte', 'sector', or 'page'")
    if time_unit not in _TIME_UNIT_US:
        raise ValueError(f"time_unit must be one of {sorted(_TIME_UNIT_US)}")
    if address_mode not in _ADDRESS_MODES:
        raise ValueError(f"address_mode must be one of {_ADDRESS_MODES}")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    if limit is not None and limit < 1:
        raise ValueError("limit must be >= 1 (or None)")

    tick_us = _TIME_UNIT_US[time_unit] * time_scale
    columns: Optional[dict] = None
    parsed: List[Tuple[float, str, int, int]] = []
    with open(path) as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = _split(line)
            if columns is None:
                header = _header_columns(fields)
                if header is not None:
                    columns = header
                    continue
                columns = _positional_columns(fields)
            try:
                timestamp = float(fields[columns["timestamp"]])
                offset = int(fields[columns["offset"]])
                size = int(fields[columns["size"]])
            except (IndexError, ValueError) as error:
                raise BlockTraceError(
                    f"{path}:{line_no}: unparseable row {line!r} ({error})"
                ) from error
            op = _parse_op(fields[columns["op"]], str(path), line_no)
            if size < 1 or offset < 0:
                raise BlockTraceError(
                    f"{path}:{line_no}: offset/size out of range "
                    f"(offset={offset}, size={size})"
                )
            lpn, byte_offset = _to_pages(offset, offset_unit, page_size_bytes)
            pages, tail = _to_pages(size, offset_unit, page_size_bytes)
            # a request covering a partial page still touches that page
            n_pages = max(1, pages + (1 if (tail + byte_offset) > 0 else 0))
            parsed.append((timestamp * tick_us, op, lpn, n_pages))
            if limit is not None and len(parsed) >= limit:
                break
    if not parsed:
        raise BlockTraceError(f"{path}: no requests found")

    base_time = min(entry[0] for entry in parsed)
    max_end = max(lpn + n_pages for _, _, lpn, n_pages in parsed)
    trace = Trace(name or path.stem, logical_pages)
    for timestamp, op, lpn, n_pages in parsed:
        n_pages = min(n_pages, logical_pages)
        if address_mode == "scale" and max_end > logical_pages:
            lpn = lpn * logical_pages // max_end
        elif address_mode == "wrap":
            lpn %= logical_pages
        if lpn + n_pages > logical_pages:
            if address_mode == "strict":
                raise BlockTraceError(
                    f"{path}: request at LPN {lpn} x{n_pages} exceeds the "
                    f"logical space ({logical_pages} pages); use "
                    "address_mode='scale'/'wrap'/'clamp' to fit it"
                )
            lpn = logical_pages - n_pages
        trace.append(IORequest(op, lpn, n_pages, arrival_us=timestamp - base_time))
    return trace
