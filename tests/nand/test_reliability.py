"""Tests for the reliability model: the Section 3 calibration targets."""

import numpy as np
import pytest

from repro.nand.geometry import BlockGeometry
from repro.nand.reliability import (
    AgingState,
    RATED_PE_CYCLES,
    ReliabilityModel,
    hash_unit,
)


class TestAgingState:
    def test_fractions(self):
        aging = AgingState(1000, 6.0)
        assert aging.pe_frac == pytest.approx(1000 / RATED_PE_CYCLES)
        assert aging.ret_frac == pytest.approx(0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AgingState(-1, 0)
        with pytest.raises(ValueError):
            AgingState(0, -0.1)


class TestHashUnit:
    def test_deterministic(self):
        assert hash_unit(1, 2, 3) == hash_unit(1, 2, 3)

    def test_range(self):
        values = [hash_unit(0, i) for i in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_sensitivity_to_every_key(self):
        base = hash_unit(5, 1, 2, 3)
        assert hash_unit(6, 1, 2, 3) != base
        assert hash_unit(5, 2, 2, 3) != base
        assert hash_unit(5, 1, 3, 3) != base
        assert hash_unit(5, 1, 2, 4) != base

    def test_roughly_uniform(self):
        values = np.array([hash_unit(7, i) for i in range(20000)])
        assert abs(values.mean() - 0.5) < 0.02


class TestLayerProfile:
    def test_profile_normalized_to_delta_v_fresh(self, reliability):
        profile = reliability.layer_profile
        assert profile.min() == pytest.approx(1.0)
        assert profile.max() == pytest.approx(reliability.delta_v_fresh)

    def test_representative_layers_are_distinct(self, reliability):
        layers = {
            reliability.layer_alpha,
            reliability.layer_beta,
            reliability.layer_kappa,
            reliability.layer_omega,
        }
        assert len(layers) == 4

    def test_alpha_is_top_edge_and_omega_bottom_edge(self, reliability):
        assert reliability.layer_alpha == 0
        assert reliability.layer_omega == reliability.geometry.n_layers - 1

    def test_kappa_is_worst_and_interior(self, reliability):
        profile = reliability.layer_profile
        kappa = reliability.layer_kappa
        assert profile[kappa] == profile.max()
        assert 0 < kappa < reliability.geometry.n_layers - 1

    def test_edges_are_degraded(self, reliability):
        """Block-edge layers have elevated BER (Fig. 6(a))."""
        profile = reliability.layer_profile
        beta = profile[reliability.layer_beta]
        assert profile[reliability.layer_alpha] > 1.2 * beta
        assert profile[reliability.layer_omega] > 1.2 * beta

    def test_severity_in_unit_range(self, reliability):
        severity = reliability.layer_severity
        assert severity.min() == pytest.approx(0.0)
        assert severity.max() == pytest.approx(1.0)


class TestCalibrationTargets:
    """The quantitative anchors from the paper's Section 3."""

    def test_delta_v_fresh_about_1_6(self, reliability, fresh):
        bers = [reliability.layer_ber(0, 0, i, fresh) for i in range(48)]
        delta_v = max(bers) / min(bers)
        assert 1.4 <= delta_v <= 1.9

    def test_delta_v_aged_about_2_3(self, reliability, aged_eol):
        bers = [reliability.layer_ber(0, 0, i, aged_eol) for i in range(48)]
        delta_v = max(bers) / min(bers)
        assert 2.0 <= delta_v <= 2.7

    def test_delta_h_virtually_one(self, reliability, aged_eol):
        """Intra-layer similarity: Delta-H stays within RTN bounds for
        every layer and aging condition tested."""
        for aging in [AgingState(0, 0), AgingState(1000, 1.0), aged_eol]:
            for layer in range(0, 48, 7):
                bers = [reliability.wl_ber(0, 0, layer, wl, aging) for wl in range(4)]
                assert max(bers) / min(bers) < 1.03

    def test_worse_layers_degrade_faster(self, reliability):
        """Fig. 6(c): kappa pulls away from beta near end of life."""
        beta, kappa = reliability.layer_beta, reliability.layer_kappa
        fresh_ratio = reliability.layer_ber(0, 0, kappa, AgingState(0, 0)) / (
            reliability.layer_ber(0, 0, beta, AgingState(0, 0))
        )
        aged_ratio = reliability.layer_ber(0, 0, kappa, AgingState(2000, 12.0)) / (
            reliability.layer_ber(0, 0, beta, AgingState(2000, 12.0))
        )
        assert aged_ratio > fresh_ratio * 1.15

    def test_ber_monotone_in_pe(self, reliability):
        bers = [
            reliability.layer_ber(0, 0, 20, AgingState(pe, 1.0))
            for pe in (0, 500, 1000, 1500, 2000)
        ]
        assert bers == sorted(bers)

    def test_ber_monotone_in_retention(self, reliability):
        bers = [
            reliability.layer_ber(0, 0, 20, AgingState(1000, ret))
            for ret in (0.0, 1.0, 3.0, 6.0, 12.0)
        ]
        assert bers == sorted(bers)

    def test_per_block_delta_v_spread(self, reliability, fresh):
        """Fig. 6(d): different blocks have visibly different Delta-V."""
        ratios = []
        for block in range(24):
            bers = [reliability.layer_ber(0, block, i, fresh) for i in range(48)]
            ratios.append(max(bers) / min(bers))
        spread = max(ratios) / min(ratios)
        assert 1.08 <= spread <= 1.4


class TestPerWLQuantities:
    def test_wl_ber_close_to_layer_ber(self, reliability, fresh):
        layer_value = reliability.layer_ber(0, 0, 10, fresh)
        for wl in range(4):
            wl_value = reliability.wl_ber(0, 0, 10, wl, fresh)
            assert abs(wl_value / layer_value - 1.0) < 0.013

    def test_n_ret_scales_with_wl_bits(self, reliability, aged_eol):
        n_ret = reliability.n_ret(0, 0, 20, 0, aged_eol)
        bits = 3 * 16 * 1024 * 8
        expected = reliability.wl_ber(0, 0, 20, 0, aged_eol) * bits
        assert n_ret == round(expected)

    def test_ber_ep1_is_fraction_of_wl_ber(self, reliability, aged_eol):
        ep1 = reliability.ber_ep1(0, 0, 20, 0, aged_eol)
        total = reliability.wl_ber(0, 0, 20, 0, aged_eol)
        assert 0.2 * total < ep1 < 0.4 * total

    def test_program_slowdown_range_and_similarity(self, reliability):
        for layer in range(0, 48, 5):
            slowdown = reliability.program_slowdown(0, 0, layer)
            assert 0.0 <= slowdown <= 1.0
        # worst layer slower than best layer
        assert reliability.program_slowdown(
            0, 0, reliability.layer_kappa
        ) > reliability.program_slowdown(0, 0, reliability.layer_beta)

    def test_spare_margin_decreases_with_aging(self, reliability):
        margin_fresh = reliability.spare_margin(0, 0, 20, 0, AgingState(0, 0), 5.5e-4)
        margin_aged = reliability.spare_margin(
            0, 0, 20, 0, AgingState(2000, 12.0), 5.5e-4
        )
        assert margin_fresh > margin_aged


class TestDeterminism:
    def test_same_seed_same_surface(self, fresh):
        a = ReliabilityModel(seed=11)
        b = ReliabilityModel(seed=11)
        assert a.layer_ber(0, 3, 17, fresh) == b.layer_ber(0, 3, 17, fresh)

    def test_different_seed_different_blocks(self, fresh):
        a = ReliabilityModel(seed=11)
        b = ReliabilityModel(seed=12)
        assert a.block_factor(0, 3) != b.block_factor(0, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityModel(delta_v_fresh=0.9)
        with pytest.raises(ValueError):
            ReliabilityModel(delta_v_fresh=2.0, delta_v_aged=1.5)
        with pytest.raises(ValueError):
            ReliabilityModel(rtn_noise=0.5)

    def test_small_geometry_supported(self, fresh):
        model = ReliabilityModel(BlockGeometry(n_layers=8, wls_per_layer=2))
        assert model.layer_ber(0, 0, 7, fresh) > 0
