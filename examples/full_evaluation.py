"""Regenerate the paper's Fig. 17 evaluation table, standalone.

Runs all six workloads against pageFTL / vertFTL / cubeFTL at a chosen
aging state and prints the normalized IOPS table -- the same data the
benchmark suite produces, but as a plain script whose scale is easy to
tweak.

Run:  python examples/full_evaluation.py [pe] [retention_months] [requests]
e.g.  python examples/full_evaluation.py 2000 12 6000
"""

import sys
import time

from repro.analysis.tables import format_table
from repro.nand.geometry import BlockGeometry, SSDGeometry
from repro.nand.reliability import AgingState
from repro.api import run_simulation
from repro.ssd.config import SSDConfig
from repro.workloads import WORKLOAD_GENERATORS

FTLS = ("page", "vert", "cube")


def main(pe: int = 0, retention: float = 0.0, n_requests: int = 6000) -> None:
    geometry = SSDGeometry(
        n_channels=2, chips_per_channel=4, blocks_per_chip=48,
        block=BlockGeometry(),
    )
    config = SSDConfig(geometry=geometry).with_aging(AgingState(pe, retention))
    print(f"aging: {pe} P/E + {retention} months retention | "
          f"{n_requests} requests/workload | QD 32\n")
    rows = []
    for workload in WORKLOAD_GENERATORS:
        start = time.time()
        iops = {}
        for ftl in FTLS:
            stats = run_simulation(
                config, workload, ftl=ftl, queue_depth=32,
                warmup_requests=n_requests // 3, prefill=0.9,
                n_requests=n_requests, seed=7,
            ).stats
            iops[stats.ftl_name] = stats.iops
        base = iops["pageFTL"]
        rows.append([
            workload,
            f"{base:.0f}",
            f"{iops['vertFTL'] / base:.2f}",
            f"{iops['cubeFTL'] / base:.2f}",
            f"{time.time() - start:.0f}s",
        ])
        print(f"  {workload}: done")
    print()
    print(format_table(
        ["workload", "pageFTL IOPS", "vertFTL (norm)", "cubeFTL (norm)", "wall"],
        rows,
    ))


if __name__ == "__main__":
    args = sys.argv[1:]
    pe = int(args[0]) if len(args) > 0 else 0
    retention = float(args[1]) if len(args) > 1 else 0.0
    n_requests = int(args[2]) if len(args) > 2 else 6000
    main(pe, retention, n_requests)
