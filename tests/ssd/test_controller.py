"""Tests for the SSD controller wiring."""

import pytest

from repro.nand.reliability import AgingState
from repro.ssd.config import SSDConfig
from repro.ssd.controller import SSDController, SSDSimulation


@pytest.fixture
def controller():
    return SSDController(SSDConfig.small())


class TestWiring:
    def test_one_chip_per_die(self, controller):
        geometry = controller.config.geometry
        assert len(controller.chips) == geometry.n_chips
        for chip_id, chip in enumerate(controller.chips):
            assert chip.chip_id == chip_id
            assert chip.n_blocks == geometry.blocks_per_chip

    def test_chips_share_one_device_model(self, controller):
        """Every FTL must see the same silicon: one reliability surface,
        one ISPP engine, one retry model, one ECC engine."""
        first = controller.chips[0]
        for chip in controller.chips[1:]:
            assert chip.reliability is first.reliability
            assert chip.ispp is first.ispp
            assert chip.retry_model is first.retry_model
            assert chip.ecc is first.ecc

    def test_chips_on_same_channel_share_bus(self):
        config = SSDConfig()  # 2 channels x 4 chips
        controller = SSDController(config)
        assert controller.bus_resource(0) is controller.bus_resource(3)
        assert controller.bus_resource(0) is not controller.bus_resource(4)

    def test_each_chip_has_own_die_resource(self, controller):
        assert controller.chip_resource(0) is not controller.chip_resource(1)

    def test_baseline_aging_applied_to_all_chips(self):
        config = SSDConfig.small().with_aging(AgingState(1500, 3.0))
        controller = SSDController(config)
        for chip in controller.chips:
            assert chip.baseline_aging.pe_cycles == 1500
            assert chip.baseline_aging.retention_months == 3.0

    def test_clock_starts_at_zero(self, controller):
        assert controller.now == 0.0


class TestStallDiagnostics:
    def test_stalled_run_reports_pending_requests(self):
        """When the event queue drains with host requests still pending,
        the error names how many -- and which -- never completed."""
        from repro.ssd.controller import SimulationStalledError
        from repro.workloads.synthetic import uniform_random_trace

        sim = SSDSimulation(SSDConfig.small(), ftl="page")
        sim.prefill(0.2)
        # swallow every submission: nothing ever completes
        sim.ftl.submit = lambda request, on_complete: None
        trace = uniform_random_trace(sim.config.logical_pages, 10, seed=1)
        with pytest.raises(SimulationStalledError) as excinfo:
            sim.run(trace, queue_depth=4)
        message = str(excinfo.value)
        assert "4 host requests never completed" in message
        assert "(0 done)" in message
        assert "lpn=" in message
        assert "n_pages=" in message

    def test_stall_message_elides_long_pending_lists(self):
        from repro.ssd.controller import _stall_message
        from repro.workloads.base import IORequest

        pending = {
            index: IORequest(op="R", lpn=index, n_pages=1)
            for index in range(12)
        }
        message = _stall_message(3, pending)
        assert "12 host requests never completed (3 done)" in message
        assert "... 4 more" in message
        assert message.count("lpn=") == 8


class TestDeterminism:
    def test_same_seed_same_simulation(self):
        """Two identical simulations produce identical results."""
        results = []
        from repro.workloads.synthetic import uniform_random_trace

        for _ in range(2):
            sim = SSDSimulation(SSDConfig.small(seed=42), ftl="cube")
            sim.prefill(0.4)
            trace = uniform_random_trace(
                sim.config.logical_pages, 300, read_fraction=0.5, seed=9
            )
            stats = sim.run(trace, queue_depth=8)
            results.append((stats.duration_us, stats.iops,
                            stats.counters.flash_programs,
                            stats.counters.read_retries))
        assert results[0] == results[1]

    def test_different_seed_different_chips(self):
        a = SSDController(SSDConfig.small(seed=1))
        b = SSDController(SSDConfig.small(seed=2))
        aging = AgingState(2000, 12.0)
        ber_a = a.chips[0].reliability.layer_ber(0, 0, 5, aging)
        ber_b = b.chips[0].reliability.layer_ber(0, 0, 5, aging)
        assert ber_a != ber_b
