"""Structured, machine-parseable diagnostics on :mod:`logging`.

Simulation *results* go to stdout; *diagnostics* (stall reports, fault
and recovery summaries, bench progress) go through Python's ``logging``
with a fixed, machine-parseable line format::

    REPRO level=ERROR logger=repro.ssd.controller event=stall completed=42 pending=3 ...

The leading ``REPRO`` token plus ``key=value`` pairs make the lines
trivially greppable and parseable (``dict(pair.split("=", 1) for pair
in line.split()[1:])``).  Values containing whitespace are quoted with
:func:`repr`.

Library modules call :func:`get_logger` and :func:`log_event`; nothing
is printed unless the application configures a handler --
:func:`configure_logging` installs one on the ``repro`` root logger
(the CLI's ``--log-level`` flag calls it).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: leading token of every structured diagnostic line
PREFIX = "REPRO"

LEVELS = ("debug", "info", "warning", "error", "critical")

#: the level :func:`configure_logging` was last called with (None until
#: then); worker processes read it to re-create the parent's config
_configured_level: Optional[str] = None


def configured_level() -> Optional[str]:
    """The level this process's logging was configured at, or ``None``
    when :func:`configure_logging` never ran.  The shard pool forwards
    it to spawned workers so ``--log-level`` diagnostics from inside a
    worker are not silently dropped."""
    return _configured_level


class _StructuredFormatter(logging.Formatter):
    """``REPRO level=... logger=... <message>`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        return (
            f"{PREFIX} level={record.levelname} logger={record.name} "
            f"{record.getMessage()}"
        )


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (e.g. ``repro.cli``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def format_fields(event: str, **fields: object) -> str:
    """``event=<event> key=value ...`` with deterministic field order
    (insertion order) and repr-quoted values containing whitespace."""
    parts = [f"event={event}"]
    for key, value in fields.items():
        text = str(value)
        if any(ch.isspace() for ch in text):
            text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def log_event(
    logger: logging.Logger, level: str, event: str, **fields: object
) -> None:
    """Emit one structured ``event=... key=value ...`` diagnostic."""
    logger.log(logging.getLevelName(level.upper()), format_fields(event, **fields))


def configure_logging(level: str = "warning", stream=None) -> logging.Logger:
    """Install the structured handler on the ``repro`` root logger.

    Idempotent: reconfiguring replaces the previously installed
    handler instead of stacking a second one.  Returns the root
    ``repro`` logger.
    """
    if level.lower() not in LEVELS:
        raise ValueError(f"unknown log level {level!r} (choose from {LEVELS})")
    global _configured_level
    _configured_level = level.lower()
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_StructuredFormatter())
    for existing in list(root.handlers):
        if getattr(existing, "_repro_structured", False):
            root.removeHandler(existing)
    handler._repro_structured = True
    root.addHandler(handler)
    root.propagate = False
    return root


def parse_line(line: str) -> Optional[dict]:
    """Parse one structured line back into a dict (None if not ours).

    The inverse of the emit format, for tests and log scrapers; quoted
    values are unescaped with a best-effort ``strip``.
    """
    parts = line.strip().split()
    if not parts or parts[0] != PREFIX:
        return None
    fields = {}
    for part in parts[1:]:
        if "=" not in part:
            continue
        key, value = part.split("=", 1)
        fields[key] = value.strip("'\"")
    return fields
